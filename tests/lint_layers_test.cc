// Pins the ci/layers.txt grammar and the cycle detector of subdex-lint
// (tools/subdex-lint/layers.h). The fixture suite (tests/lint/) exercises
// the checks end to end through the binary; this test pins the parser's
// rejection set and the detector's exact cycle reporting, plus the real
// repo graph: ci/layers.txt must parse, cover what it declares, and stay
// acyclic — and must become cyclic the moment an edge is inverted, which
// is the self-test ci/subdex_lint.sh re-runs on every push.

#include "tools/subdex-lint/layers.h"

#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace subdex_lint {
namespace {

LayerGraph MustParse(const std::string& text) {
  LayerGraph graph;
  std::string error;
  EXPECT_TRUE(ParseLayersFile(text, &graph, &error)) << error;
  return graph;
}

std::string MustFail(const std::string& text) {
  LayerGraph graph;
  std::string error;
  EXPECT_FALSE(ParseLayersFile(text, &graph, &error));
  return error;
}

TEST(LayersParse, ParsesDeclarationsCommentsAndBlanks) {
  LayerGraph g = MustParse(
      "# comment\n"
      "\n"
      "util:\n"
      "storage: util\n"
      "core: storage util  # trailing comment\n");
  ASSERT_EQ(g.subsystems.size(), 3u);
  EXPECT_EQ(g.subsystems[0], "util");
  EXPECT_TRUE(g.EdgeAllowed("storage", "util"));
  EXPECT_TRUE(g.EdgeAllowed("core", "storage"));
  EXPECT_FALSE(g.EdgeAllowed("util", "core"));
  EXPECT_FALSE(g.EdgeAllowed("storage", "core"));
}

TEST(LayersParse, EdgesAreExplicitNotTransitive) {
  LayerGraph g = MustParse("util:\nstorage: util\ncore: storage\n");
  // core -> storage -> util is declared, but core -> util is not: the
  // graph is an allowlist of direct edges, never a reachability closure.
  EXPECT_TRUE(g.EdgeAllowed("core", "storage"));
  EXPECT_FALSE(g.EdgeAllowed("core", "util"));
}

TEST(LayersParse, RejectsMissingColon) {
  EXPECT_NE(MustFail("util\n").find("expected '<subsystem>:"),
            std::string::npos);
}

TEST(LayersParse, RejectsDuplicateSubsystem) {
  EXPECT_NE(MustFail("util:\nutil:\n").find("duplicate"),
            std::string::npos);
}

TEST(LayersParse, RejectsSelfDependency) {
  EXPECT_NE(MustFail("util: util\n").find("itself"), std::string::npos);
}

TEST(LayersParse, RejectsInvalidNames) {
  MustFail("Util:\n");
  MustFail("ut il:\n");
  MustFail("util: Core\n");
}

TEST(LayersValidate, ReportsUndeclaredDependency) {
  LayerGraph g = MustParse("storage: util\n");
  std::string error;
  EXPECT_FALSE(ValidateDeclaredDeps(g, &error));
  EXPECT_NE(error.find("util"), std::string::npos);
}

TEST(LayersCycle, FindsDirectAndTransitiveCycles) {
  LayerGraph two = MustParse("a: b\nb: a\n");
  EXPECT_FALSE(FindCycle(two).empty());

  LayerGraph three = MustParse("a: b\nb: c\nc: a\n");
  const std::vector<std::string> cycle = FindCycle(three);
  ASSERT_GE(cycle.size(), 3u);
  // The path closes on itself: the report is a walkable cycle, not just
  // a yes/no bit.
  EXPECT_EQ(cycle.front(), cycle.back());
}

TEST(LayersCycle, AcyclicGraphReportsNoCycle) {
  LayerGraph g = MustParse("util:\nstorage: util\ncore: storage util\n");
  EXPECT_TRUE(FindCycle(g).empty());
}

// ---------------------------------------------------------------------------
// The real repo graph.

std::string ReadRepoLayers() {
  const std::string path = std::string(SUBDEX_REPO_ROOT) + "/ci/layers.txt";
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(RepoLayers, ParsesValidatesAndIsAcyclic) {
  LayerGraph g = MustParse(ReadRepoLayers());
  std::string error;
  EXPECT_TRUE(ValidateDeclaredDeps(g, &error)) << error;
  EXPECT_TRUE(FindCycle(g).empty());
  // Spot-pin the arc direction: the wire front end may reach down into
  // the engine, never the reverse.
  EXPECT_TRUE(g.EdgeAllowed("server", "engine"));
  EXPECT_FALSE(g.EdgeAllowed("engine", "server"));
  EXPECT_FALSE(g.EdgeAllowed("util", "storage"));
}

TEST(RepoLayers, InvertedEdgeCreatesADetectedCycle) {
  // The CI self-test in shell form: append an inverted edge to the real
  // graph and the detector must light up, or L1 could not catch a real
  // inversion either.
  LayerGraph g = MustParse(ReadRepoLayers() + "\nutil2: server\n");
  EXPECT_TRUE(FindCycle(g).empty())
      << "a fresh subsystem pointing at server is not a cycle";
  LayerGraph bad;
  std::string error;
  std::string text = ReadRepoLayers();
  // util gains a dependency on server: util -> server -> ... -> util.
  const size_t at = text.find("util:");
  ASSERT_NE(at, std::string::npos);
  text.replace(at, 5, "util: server\n#");
  ASSERT_TRUE(ParseLayersFile(text, &bad, &error)) << error;
  EXPECT_FALSE(FindCycle(bad).empty());
}

}  // namespace
}  // namespace subdex_lint
