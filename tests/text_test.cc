#include <gtest/gtest.h>

#include "text/review_extraction.h"
#include "text/review_generator.h"
#include "text/sentiment.h"
#include "util/random.h"

namespace subdex {
namespace {

// ----------------------------------------------------------- Tokenizer ---

TEST(TokenizerTest, LowercasesAndSplitsOnPunctuation) {
  auto tokens = Tokenize("The Food, was GREAT.");
  std::vector<std::string> expected = {"the", "food", "was", "great"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, KeepsExclamationAndQuestionMarks) {
  auto tokens = Tokenize("wow! really?");
  std::vector<std::string> expected = {"wow", "!", "really", "?"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, KeepsApostrophes) {
  auto tokens = Tokenize("don't stop");
  std::vector<std::string> expected = {"don't", "stop"};
  EXPECT_EQ(tokens, expected);
}

TEST(TokenizerTest, EmptyAndWhitespaceOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("   \t\n").empty());
}

// ------------------------------------------------------------ Analyzer ---

TEST(SentimentTest, PositiveAndNegativeWords) {
  SentimentAnalyzer a;
  EXPECT_GT(a.ScoreText("the food was delicious"), 0.3);
  EXPECT_LT(a.ScoreText("the food was terrible"), -0.3);
  EXPECT_EQ(a.ScoreText("the table was brown"), 0.0);
}

TEST(SentimentTest, NegationFlipsPolarity) {
  SentimentAnalyzer a;
  double positive = a.ScoreText("the service was good");
  double negated = a.ScoreText("the service was not good");
  EXPECT_GT(positive, 0.0);
  EXPECT_LT(negated, 0.0);
  // Negation also damps: |negated| < |positive|.
  EXPECT_LT(std::abs(negated), std::abs(positive));
}

TEST(SentimentTest, BoosterIntensifies) {
  SentimentAnalyzer a;
  EXPECT_GT(a.ScoreText("extremely delicious food"),
            a.ScoreText("delicious food"));
  EXPECT_LT(a.ScoreText("slightly tasty food"), a.ScoreText("tasty food"));
}

TEST(SentimentTest, BoosterAmplifiesNegativeDownward) {
  SentimentAnalyzer a;
  EXPECT_LT(a.ScoreText("utterly horrible service"),
            a.ScoreText("horrible service"));
}

TEST(SentimentTest, ExclamationEmphasizes) {
  SentimentAnalyzer a;
  EXPECT_GT(a.ScoreText("great food !"), a.ScoreText("great food"));
  EXPECT_LT(a.ScoreText("awful food !"), a.ScoreText("awful food"));
  // Emphasis caps at three exclamation marks.
  EXPECT_DOUBLE_EQ(a.ScoreText("great food ! ! !"),
                   a.ScoreText("great food ! ! ! ! !"));
}

TEST(SentimentTest, CompoundStaysInUnitRange) {
  SentimentAnalyzer a;
  double s = a.ScoreText(
      "amazing outstanding exceptional fantastic superb perfect phenomenal "
      "incredible ! ! !");
  EXPECT_LE(s, 1.0);
  EXPECT_GT(s, 0.9);
}

TEST(SentimentTest, CompoundToScaleEndpointsAndMidpoint) {
  EXPECT_EQ(SentimentAnalyzer::CompoundToScale(-1.0, 5), 1);
  EXPECT_EQ(SentimentAnalyzer::CompoundToScale(1.0, 5), 5);
  EXPECT_EQ(SentimentAnalyzer::CompoundToScale(0.0, 5), 3);
  EXPECT_EQ(SentimentAnalyzer::CompoundToScale(2.5, 5), 5);   // clipped
  EXPECT_EQ(SentimentAnalyzer::CompoundToScale(-2.5, 5), 1);  // clipped
}

// ----------------------------------------------------------- Extractor ---

TEST(ExtractorTest, WindowLimitsContext) {
  ReviewExtractor extractor({{"service"}}, 5, 5);
  // "terrible" sits 7 tokens before "service": outside the +/-5 window.
  auto far_tokens = Tokenize(
      "terrible one two three four five six service was fine");
  auto near_tokens = Tokenize("terrible service");
  auto far = extractor.DimensionSentiment(far_tokens, 0);
  auto near = extractor.DimensionSentiment(near_tokens, 0);
  ASSERT_TRUE(far.has_value());
  ASSERT_TRUE(near.has_value());
  EXPECT_LT(*near, 0.0);
  EXPECT_GT(*far, *near);  // "terrible" excluded, "fine" included
}

TEST(ExtractorTest, UnmentionedDimensionFallsBack) {
  ReviewExtractor extractor({{"food"}, {"service"}}, 5);
  std::vector<double> scores =
      extractor.ExtractScores("the food was great", 2.0);
  EXPECT_GT(scores[0], 3.0);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);  // fallback
}

TEST(ExtractorTest, SynonymKeywordsShareDimension) {
  ReviewExtractor extractor({{"ambiance", "atmosphere"}}, 5);
  auto a = extractor.ExtractScores("lovely ambiance", 3.0);
  auto b = extractor.ExtractScores("lovely atmosphere", 3.0);
  EXPECT_DOUBLE_EQ(a[0], b[0]);
  EXPECT_GT(a[0], 3.0);
}

TEST(ExtractorTest, MultipleMentionsAverage) {
  ReviewExtractor extractor({{"food"}}, 5);
  auto mixed = extractor.ExtractScores(
      "delicious food . later that evening the food was awful", 3.0);
  auto good = extractor.ExtractScores("delicious food", 3.0);
  EXPECT_LT(mixed[0], good[0]);
}

// ----------------------------------------------- Generator round-trip ----

// The core property of the synthetic Yelp pipeline: text generated for a
// target score extracts back to exactly that score, for every score and
// dimension arrangement.
class RoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripTest, GeneratedReviewExtractsToTargets) {
  std::vector<std::string> keywords = {"food", "service", "ambiance"};
  ReviewGenerator gen(keywords);
  ReviewExtractor extractor({{"food"}, {"service"}, {"ambiance"}}, 5);
  Rng rng(100 + GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<int> targets = {rng.UniformInt(1, 5), rng.UniformInt(1, 5),
                                rng.UniformInt(1, 5)};
    std::string review = gen.Generate(targets, &rng);
    std::vector<double> extracted = extractor.ExtractScores(review, 3.0);
    for (size_t d = 0; d < targets.size(); ++d) {
      EXPECT_EQ(static_cast<int>(extracted[d]), targets[d])
          << "dimension " << d << " of: " << review;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripTest, ::testing::Range(0, 8));

TEST(ReviewGeneratorTest, MentionsEveryKeyword) {
  ReviewGenerator gen({"food", "service"});
  Rng rng(7);
  std::string review = gen.Generate({3, 4}, &rng);
  EXPECT_NE(review.find("food"), std::string::npos);
  EXPECT_NE(review.find("service"), std::string::npos);
}

TEST(ReviewGeneratorTest, DeterministicGivenRngState) {
  ReviewGenerator gen({"food"});
  Rng a(9), b(9);
  EXPECT_EQ(gen.Generate({5}, &a), gen.Generate({5}, &b));
}

}  // namespace
}  // namespace subdex
