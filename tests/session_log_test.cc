#include <gtest/gtest.h>

#include <filesystem>

#include "engine/exploration_session.h"
#include "engine/personalized.h"
#include "engine/session_log.h"
#include "storage/query_parser.h"
#include "tests/test_support.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

EngineConfig SmallConfig() {
  EngineConfig config;
  config.min_group_size = 1;
  config.operations.max_candidates = 50;
  config.num_threads = 2;
  return config;
}

SessionLog RecordSession(SubjectiveDatabase* db, size_t automated_steps) {
  ExplorationSession session(db, SmallConfig(),
                             ExplorationMode::kFullyAutomated);
  SessionLog log;
  EXPECT_TRUE(log.Append(session.Start(GroupSelection{})).ok());
  for (size_t s = 0; s < automated_steps; ++s) {
    if (!session.ApplyRecommendation(0)) break;
    EXPECT_TRUE(log.Append(session.last()).ok());
  }
  return log;
}

// ----------------------------------------------------------- SessionLog --

TEST(SessionLogTest, AppendCapturesStepContents) {
  auto db = MakeTinyRestaurantDb();
  SessionLog log = RecordSession(db.get(), 2);
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log.steps()[0].selection, GroupSelection{});
  EXPECT_EQ(log.steps()[0].group_size, db->num_records());
  EXPECT_EQ(log.steps()[0].displayed.size(), 3u);
}

TEST(SessionLogTest, SerializeDeserializeRoundTrip) {
  auto db = MakeRandomDb(40, 15, 400, 2, 121);
  SessionLog log = RecordSession(db.get(), 3);
  std::string text = log.Serialize(*db);
  auto restored = SessionLog::Deserialize(db.get(), text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  const SessionLog& r = restored.value();
  ASSERT_EQ(r.size(), log.size());
  for (size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(r.steps()[i].selection, log.steps()[i].selection) << i;
    EXPECT_EQ(r.steps()[i].group_size, log.steps()[i].group_size);
    ASSERT_EQ(r.steps()[i].displayed.size(), log.steps()[i].displayed.size());
    for (size_t m = 0; m < r.steps()[i].displayed.size(); ++m) {
      EXPECT_TRUE(r.steps()[i].displayed[m] == log.steps()[i].displayed[m]);
    }
  }
}

TEST(SessionLogTest, FileRoundTrip) {
  auto db = MakeTinyRestaurantDb();
  SessionLog log = RecordSession(db.get(), 1);
  std::string path =
      (std::filesystem::temp_directory_path() / "subdex_session.log").string();
  ASSERT_TRUE(log.SaveToFile(*db, path).ok());
  auto restored = SessionLog::LoadFromFile(db.get(), path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().size(), log.size());
  std::remove(path.c_str());
}

TEST(SessionLogTest, OpenSinkFlushClosesPreviousSinkBeforeReplacing) {
  // Re-opening must not lose entries written through the previous sink:
  // the old stream is flush-closed before the replacement opens.
  auto db = MakeTinyRestaurantDb();
  SessionLog log = RecordSession(db.get(), 0);
  namespace fs = std::filesystem;
  const std::string path_a = (fs::temp_directory_path() / "sink_a.log").string();
  const std::string path_b = (fs::temp_directory_path() / "sink_b.log").string();

  ASSERT_TRUE(log.OpenSink(db.get(), path_a).ok());
  StepResult step;
  step.group_size = 7;
  ASSERT_TRUE(log.Append(step).ok());
  ASSERT_TRUE(log.Append(step).ok());

  ASSERT_TRUE(log.OpenSink(db.get(), path_b).ok());
  ASSERT_TRUE(log.Append(step).ok());
  ASSERT_TRUE(log.CloseSink().ok());

  auto restored_a = SessionLog::LoadFromFile(db.get(), path_a);
  ASSERT_TRUE(restored_a.ok()) << restored_a.status().ToString();
  EXPECT_EQ(restored_a.value().size(), 2u);
  auto restored_b = SessionLog::LoadFromFile(db.get(), path_b);
  ASSERT_TRUE(restored_b.ok()) << restored_b.status().ToString();
  EXPECT_EQ(restored_b.value().size(), 1u);
  fs::remove(path_a);
  fs::remove(path_b);
}

TEST(SessionLogTest, OpenSinkSurfacesPreviousSinkCloseError) {
  // Regression: OpenSink used to discard the old stream without checking
  // it, so entries still buffered in a failing sink (disk full) vanished
  // with no error anywhere. The close error must surface in the returned
  // Status — while the new sink still opens, so logging continues.
  if (!std::filesystem::exists("/dev/full")) {
    GTEST_SKIP() << "/dev/full not available";
  }
  auto db = MakeTinyRestaurantDb();
  SessionLog log = RecordSession(db.get(), 0);
  ASSERT_TRUE(log.OpenSink(db.get(), "/dev/full").ok());
  StepResult step;
  step.group_size = 3;
  // The write-through flush fails (ENOSPC); Append reports it and the
  // unflushed bytes stay buffered in the old sink.
  Status append = log.Append(step);
  EXPECT_FALSE(append.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "sink_after_full.log")
          .string();
  Status reopen = log.OpenSink(db.get(), path);
  EXPECT_FALSE(reopen.ok());
  EXPECT_EQ(reopen.code(), StatusCode::kIoError);
  // The replacement sink is open and functional despite the old sink's
  // close failure.
  EXPECT_TRUE(log.has_sink());
  ASSERT_TRUE(log.Append(step).ok());
  ASSERT_TRUE(log.CloseSink().ok());
  auto restored = SessionLog::LoadFromFile(db.get(), path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().size(), 1u);
  std::filesystem::remove(path);
}

TEST(SessionLogTest, DeserializeRejectsGarbage) {
  auto db = MakeTinyRestaurantDb();
  EXPECT_FALSE(SessionLog::Deserialize(db.get(), "bogus line\n").ok());
  EXPECT_FALSE(
      SessionLog::Deserialize(db.get(), "map reviewer gender overall\n").ok());
  EXPECT_FALSE(SessionLog::Deserialize(
                   db.get(), "step 10 1.0\nmap nowhere gender overall\n")
                   .ok());
  EXPECT_FALSE(SessionLog::Deserialize(
                   db.get(), "step 10 1.0\nmap reviewer nope overall\n")
                   .ok());
  // Empty text is a valid empty log.
  auto empty = SessionLog::Deserialize(db.get(), "");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

// Property: the text format is a faithful carrier for any selection the
// query grammar can express — including values that force quoting. The
// journal's crash recovery replays selections through this same
// query-string round-trip (PredicateToQuery -> parse), so a value that
// breaks it would silently diverge a recovered session.
TEST(SessionLogProperty, AdversarialSelectionsSurviveTextRoundTrip) {
  // One categorical attribute per side, stocked with hostile values: both
  // quote kinds (never together: the grammar cannot carry a value holding
  // both), whitespace, grammar metacharacters, UTF-8, lookalikes of the
  // serializer's own "-" empty-query marker.
  const std::vector<std::string> notes = {
      "it's",          "say \"hi\"", "two words",   "tab\tchar",
      "\xd0\xba\xd0\xbe\xd1\x84\xd0\xb5",  // UTF-8 "кофе"
      "a = b AND c",   "-",          " leading",    "trailing ",
      "(paren)",       "$bare-word_ok.1",
  };
  Schema reviewer_schema({{"note", AttributeType::kCategorical}});
  Schema item_schema({{"tag", AttributeType::kCategorical}});
  auto db = std::make_unique<SubjectiveDatabase>(
      reviewer_schema, item_schema, std::vector<std::string>{"overall"}, 5);
  for (const std::string& note : notes) {
    Status appended = db->reviewers().AppendRow({note});
    ASSERT_TRUE(appended.ok()) << note;
    appended = db->items().AppendRow({std::string("tag_") + note});
    ASSERT_TRUE(appended.ok()) << note;
  }
  for (RowId row = 0; row < static_cast<RowId>(notes.size()); ++row) {
    ASSERT_TRUE(db->AddRating(row, row, {3.0}).ok());
  }
  db->FinalizeIndexes();

  // Every (reviewer value, item value) pairing, plus the empty query on
  // each side in turn (serialized as "-", which must not collide with the
  // literal "-" value above).
  SessionLog log;
  std::vector<GroupSelection> expected;
  for (size_t r = 0; r < notes.size(); ++r) {
    for (size_t i = 0; i < notes.size(); ++i) {
      GroupSelection selection;
      if (r + 1 < notes.size()) {
        auto pred = ParsePredicateReadOnly(db->table(Side::kReviewer),
                                           "note = '" + notes[r] + "'");
        if (!pred.ok()) {  // values holding ' use double quotes instead
          pred = ParsePredicateReadOnly(db->table(Side::kReviewer),
                                        "note = \"" + notes[r] + "\"");
        }
        ASSERT_TRUE(pred.ok()) << notes[r] << ": " << pred.status().message();
        selection.reviewer_pred = std::move(pred).value();
      }
      if (i + 1 < notes.size()) {
        std::string value = "tag_" + notes[i];
        auto pred = ParsePredicateReadOnly(db->table(Side::kItem),
                                           "tag = '" + value + "'");
        if (!pred.ok()) {
          pred = ParsePredicateReadOnly(db->table(Side::kItem),
                                        "tag = \"" + value + "\"");
        }
        ASSERT_TRUE(pred.ok()) << value << ": " << pred.status().message();
        selection.item_pred = std::move(pred).value();
      }
      StepResult step;
      step.selection = selection;
      step.group_size = r * notes.size() + i;
      ASSERT_TRUE(log.Append(step).ok());
      expected.push_back(std::move(selection));
    }
  }

  std::string text = log.Serialize(*db);
  auto restored = SessionLog::Deserialize(db.get(), text);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value().size(), expected.size());
  const std::vector<LoggedStep> steps = restored.value().steps();
  for (size_t s = 0; s < expected.size(); ++s) {
    EXPECT_EQ(steps[s].selection, expected[s])
        << "step " << s << " selection did not survive the round-trip";
    EXPECT_EQ(steps[s].group_size, s);
  }
}

// ------------------------------------------- OperationPreferenceModel ----

TEST(PersonalizedTest, UntrainedModelIsNeutral) {
  OperationPreferenceModel model;
  auto db = MakeTinyRestaurantDb();
  GroupSelection from;
  GroupSelection to;
  to.reviewer_pred = Predicate({{0, 0}});
  EXPECT_DOUBLE_EQ(model.Affinity(from, to), 0.5);
}

TEST(PersonalizedTest, LearnsTouchedAttributes) {
  OperationPreferenceModel model;
  GroupSelection empty;
  GroupSelection by_gender;
  by_gender.reviewer_pred = Predicate({{0, 0}});
  GroupSelection by_age;
  by_age.reviewer_pred = Predicate({{1, 0}});
  // The user repeatedly slices by attribute 0, once by attribute 1.
  for (int i = 0; i < 5; ++i) model.ObserveTransition(empty, by_gender);
  model.ObserveTransition(empty, by_age);
  EXPECT_GT(model.Affinity(empty, by_gender), model.Affinity(empty, by_age));
  EXPECT_DOUBLE_EQ(model.Affinity(empty, by_gender), 1.0);
  EXPECT_EQ(model.total_observations(), 6.0);
}

TEST(PersonalizedTest, ObserveLogWalksTransitions) {
  auto db = MakeRandomDb(40, 15, 400, 2, 123);
  SessionLog log = RecordSession(db.get(), 3);
  OperationPreferenceModel model;
  model.ObserveLog(log);
  EXPECT_GT(model.total_observations(), 0.0);
}

TEST(PersonalizedTest, RerankBlendsAffinityWithUtility) {
  OperationPreferenceModel model;
  GroupSelection empty;
  GroupSelection fav;
  fav.reviewer_pred = Predicate({{0, 0}});
  GroupSelection other;
  other.item_pred = Predicate({{0, 0}});
  for (int i = 0; i < 4; ++i) model.ObserveTransition(empty, fav);

  Recommendation high_utility;
  high_utility.operation.target = other;
  high_utility.utility = 1.0;
  Recommendation favored;
  favored.operation.target = fav;
  favored.utility = 0.8;

  // blend 0: SubDEx order (utility wins).
  auto plain = model.Rerank({high_utility, favored}, empty, 0.0);
  EXPECT_EQ(plain[0].operation.target, other);
  // Strong blend: the learned preference wins.
  auto personal = model.Rerank({high_utility, favored}, empty, 0.9);
  EXPECT_EQ(personal[0].operation.target, fav);
}

TEST(PersonalizedTest, RerankKeepsAllRecommendations) {
  OperationPreferenceModel model;
  std::vector<Recommendation> recs(4);
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i].utility = static_cast<double>(i);
    recs[i].operation.target.reviewer_pred =
        Predicate({{i, static_cast<ValueCode>(0)}});
  }
  auto out = model.Rerank(recs, GroupSelection{}, 0.5);
  EXPECT_EQ(out.size(), recs.size());
}

}  // namespace
}  // namespace subdex
