// Unit tests for the contract macros in util/status.h (DESIGN.md §10).
//
// The *enforcement* proof — that a discarded Status fails to compile under
// -Werror=unused-result — lives in tests/nodiscard_compile_fail.cc, driven
// as a negative compile test from tests/CMakeLists.txt. These tests pin
// down everything enforcement must not break: correct call sites keep
// compiling warning-free on GCC and Clang, and the annotated types keep
// their value semantics.

#include <type_traits>
#include <utility>

#include "gtest/gtest.h"
#include "util/status.h"

namespace subdex {
namespace {

// The macros must exist and expand to an attribute usable at class scope
// and on free functions (this TU fails to compile otherwise).
#ifndef SUBDEX_NODISCARD
#error "SUBDEX_NODISCARD must be defined by util/status.h"
#endif
#ifndef SUBDEX_MUST_USE_RESULT
#error "SUBDEX_MUST_USE_RESULT must be defined by util/status.h"
#endif

SUBDEX_MUST_USE_RESULT Status FreeFunctionReturningStatus() {
  return Status::Ok();
}
SUBDEX_NODISCARD int FreeFunctionReturningValue() { return 42; }

TEST(NodiscardTest, AnnotatedFunctionsWorkWhenResultIsConsumed) {
  Status st = FreeFunctionReturningStatus();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(FreeFunctionReturningValue(), 42);
}

TEST(NodiscardTest, StatusKeepsValueSemantics) {
  // The class-level [[nodiscard]] must not interfere with copying, moving,
  // or assignment of Status values.
  Status error = Status::InvalidArgument("bad");
  Status copy = error;
  EXPECT_EQ(copy.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(copy.message(), "bad");
  Status moved = std::move(error);
  EXPECT_EQ(moved.code(), StatusCode::kInvalidArgument);
  copy = Status::Ok();
  EXPECT_TRUE(copy.ok());
  static_assert(std::is_copy_constructible_v<Status>);
  static_assert(std::is_move_constructible_v<Status>);
  static_assert(std::is_copy_assignable_v<Status>);
  static_assert(std::is_move_assignable_v<Status>);
}

TEST(NodiscardTest, ResultKeepsValueSemantics) {
  Result<int> ok_result(7);
  EXPECT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value(), 7);
  Result<int> err_result(Status::NotFound("missing"));
  EXPECT_FALSE(err_result.ok());
  EXPECT_EQ(err_result.status().code(), StatusCode::kNotFound);
  Result<int> copy = ok_result;
  EXPECT_EQ(copy.value(), 7);
  EXPECT_EQ(Result<int>(9).value(), 9);  // rvalue value() path
}

TEST(NodiscardTest, DiscardIsAcceptedWhenExplicitlyCast) {
  // static_cast<void> is the sanctioned escape hatch for the rare call
  // site that truly does not care (it must carry a justification comment;
  // ci/lint.sh enforces that for (void)-style discards in src/).
  static_cast<void>(FreeFunctionReturningStatus());
  static_cast<void>(FreeFunctionReturningValue());
}

}  // namespace
}  // namespace subdex
