#include <gtest/gtest.h>

#include <set>

#include "baselines/pattern.h"
#include "baselines/qagview.h"
#include "baselines/smart_drilldown.h"
#include "tests/test_support.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

// -------------------------------------------------------------- Pattern --

TEST(PatternTest, SingleConditionCoverageIsExact) {
  auto db = MakeRandomDb(30, 12, 400, 1, 81);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  std::vector<Pattern> patterns = EnumerateSingleConditionPatterns(all);
  ASSERT_FALSE(patterns.empty());
  for (const Pattern& p : patterns) {
    ASSERT_EQ(p.conditions.size(), 1u);
    const auto& [side, av] = p.conditions[0];
    const Table& table = db->table(side);
    for (size_t pos = 0; pos < all.size(); ++pos) {
      RecordId rec = all.records()[pos];
      RowId row =
          side == Side::kReviewer ? db->reviewer_of(rec) : db->item_of(rec);
      EXPECT_EQ(p.coverage.Test(pos),
                table.HasValue(av.attribute, row, av.code));
    }
  }
}

TEST(PatternTest, ConstrainedAttributesAreSkipped) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection sel;
  sel.reviewer_pred =
      Predicate({{0, db->reviewers().LookupValue(0, "F")}});
  RatingGroup g = RatingGroup::Materialize(*db, sel);
  for (const Pattern& p : EnumerateSingleConditionPatterns(g)) {
    const auto& [side, av] = p.conditions[0];
    if (side == Side::kReviewer) {
      EXPECT_NE(av.attribute, 0u);
    }
  }
}

TEST(PatternTest, CombineIntersectsCoverage) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  std::vector<Pattern> patterns = EnumerateSingleConditionPatterns(all);
  ASSERT_GE(patterns.size(), 2u);
  Pattern combined = CombinePatterns(patterns[0], patterns[1]);
  EXPECT_EQ(combined.conditions.size(), 2u);
  for (size_t pos = 0; pos < all.size(); ++pos) {
    EXPECT_EQ(combined.coverage.Test(pos),
              patterns[0].coverage.Test(pos) &&
                  patterns[1].coverage.Test(pos));
  }
}

TEST(PatternTest, DifferenceIsSymmetricDifferenceSize) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  std::vector<Pattern> ps = EnumerateSingleConditionPatterns(all);
  ASSERT_GE(ps.size(), 3u);
  EXPECT_EQ(ps[0].Difference(ps[0]), 0u);
  EXPECT_EQ(ps[0].Difference(ps[1]), 2u);
  Pattern combined = CombinePatterns(ps[0], ps[1]);
  EXPECT_EQ(combined.Difference(ps[0]), 1u);
}

TEST(PatternTest, ToOperationDrillsDown) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection sel;
  sel.item_pred = Predicate({{1, db->items().LookupValue(1, "nyc")}});
  RatingGroup g = RatingGroup::Materialize(*db, sel);
  std::vector<Pattern> ps = EnumerateSingleConditionPatterns(g);
  ASSERT_FALSE(ps.empty());
  Operation op = ps[0].ToOperation(sel);
  // Drill-down: the new selection contains the old one.
  EXPECT_TRUE(op.target.reviewer_pred.Contains(sel.reviewer_pred));
  EXPECT_TRUE(op.target.item_pred.Contains(sel.item_pred));
  EXPECT_EQ(op.target.size(), sel.size() + 1);
}

// ------------------------------------------------------------------ SDD --

TEST(SddTest, ReturnsOnlyDrillDowns) {
  auto db = MakeRandomDb(60, 20, 800, 1, 83);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SmartDrillDown sdd;
  std::vector<Operation> ops = sdd.Recommend(all, 4);
  ASSERT_FALSE(ops.empty());
  for (const Operation& op : ops) {
    EXPECT_TRUE(op.target.reviewer_pred.Contains(
        all.selection().reviewer_pred));
    EXPECT_TRUE(op.target.item_pred.Contains(all.selection().item_pred));
    EXPECT_GT(op.target.size(), all.selection().size());
  }
}

TEST(SddTest, RulesAreDistinct) {
  auto db = MakeRandomDb(60, 20, 800, 1, 85);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SmartDrillDown sdd;
  std::vector<Operation> ops = sdd.Recommend(all, 5);
  std::set<std::string> targets;
  for (const Operation& op : ops) {
    EXPECT_TRUE(targets.insert(op.target.ToString(*db)).second);
  }
}

TEST(SddTest, FirstRuleHasLargeCoverage) {
  auto db = MakeRandomDb(60, 20, 800, 1, 87);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SmartDrillDown sdd;
  std::vector<Operation> ops = sdd.Recommend(all, 1);
  ASSERT_EQ(ops.size(), 1u);
  RatingGroup sub = RatingGroup::Materialize(*db, ops[0].target);
  // The greedy first rule covers a sizable chunk of the group.
  EXPECT_GT(sub.size(), all.size() / 10);
}

TEST(SddTest, EmptyGroupAndZeroCount) {
  auto db = MakeTinyRestaurantDb();
  SmartDrillDown sdd;
  RatingGroup empty(&*db, GroupSelection{}, std::vector<RecordId>{});
  EXPECT_TRUE(sdd.Recommend(empty, 3).empty());
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  EXPECT_TRUE(sdd.Recommend(all, 0).empty());
}

// -------------------------------------------------------------- Qagview --

TEST(QagviewTest, ClustersRespectDistanceD) {
  auto db = MakeRandomDb(60, 20, 800, 1, 89);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  Qagview qv;
  std::vector<Operation> ops = qv.Recommend(all, 4);
  ASSERT_GE(ops.size(), 2u);
  // Reconstruct each cluster's condition set (the conjuncts added on top of
  // the empty selection); with D = 2, the symmetric difference between two
  // clusters' condition sets has at least 2 elements.
  auto conditions = [](const GroupSelection& sel) {
    std::set<std::tuple<int, size_t, ValueCode>> out;
    for (const AttributeValue& av : sel.reviewer_pred.conjuncts()) {
      out.insert({0, av.attribute, av.code});
    }
    for (const AttributeValue& av : sel.item_pred.conjuncts()) {
      out.insert({1, av.attribute, av.code});
    }
    return out;
  };
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j = i + 1; j < ops.size(); ++j) {
      auto a = conditions(ops[i].target);
      auto b = conditions(ops[j].target);
      size_t diff = 0;
      for (const auto& c : a) diff += b.count(c) == 0 ? 1 : 0;
      for (const auto& c : b) diff += a.count(c) == 0 ? 1 : 0;
      EXPECT_GE(diff, 2u);
    }
  }
}

TEST(QagviewTest, ReturnsOnlyDrillDowns) {
  auto db = MakeRandomDb(60, 20, 800, 1, 91);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  Qagview qv;
  for (const Operation& op : qv.Recommend(all, 3)) {
    EXPECT_GT(op.target.size(), all.selection().size());
    EXPECT_TRUE(op.target.reviewer_pred.Contains(
        all.selection().reviewer_pred));
  }
}

TEST(QagviewTest, CoverageGrowsWithClusters) {
  auto db = MakeRandomDb(80, 20, 1200, 1, 93);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  Qagview qv;
  std::vector<Operation> one = qv.Recommend(all, 1);
  std::vector<Operation> four = qv.Recommend(all, 4);
  ASSERT_EQ(one.size(), 1u);
  ASSERT_GE(four.size(), 2u);
  auto covered = [&](const std::vector<Operation>& ops) {
    std::set<RecordId> records;
    for (const Operation& op : ops) {
      RatingGroup g = RatingGroup::Materialize(*db, op.target);
      records.insert(g.records().begin(), g.records().end());
    }
    return records.size();
  };
  EXPECT_GE(covered(four), covered(one));
}

TEST(QagviewTest, EmptyGroupYieldsNothing) {
  auto db = MakeTinyRestaurantDb();
  Qagview qv;
  RatingGroup empty(&*db, GroupSelection{}, std::vector<RecordId>{});
  EXPECT_TRUE(qv.Recommend(empty, 3).empty());
}

}  // namespace
}  // namespace subdex
