// Determinism contract of the simulated-subject layer: the same seed must
// yield byte-identical behavior sequences even when two subjects run
// concurrently on different threads. The load harness (src/loadgen) leans
// on this — a trajectory point is reproducible only if session i's
// action/think-time stream depends on nothing but (seed, i) — and running
// the pairs under TSan (ci/sanitize.sh) proves there is no hidden shared
// state (a global rng, a racy cache) coupling concurrent subjects.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/irregular.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "study/scenario_runner.h"
#include "study/simulated_user.h"

namespace subdex {
namespace {

// The full wire-visible behavior stream of one subject: recommendation
// picks over varying offer counts plus think-time draws, formatted to a
// fixed precision so comparison is byte-exact.
std::string BehaviorScript(uint64_t seed) {
  UserProfile profile;
  profile.high_cs_expertise = true;
  profile.seed = seed;
  SimulatedUser user(profile);
  std::string script;
  char buffer[64];
  for (int step = 0; step < 200; ++step) {
    size_t offered = static_cast<size_t>(step % 6);  // includes zero offers
    auto pick = user.ChooseRecommendationIndex(offered);
    double think = user.NextThinkTimeMs(250.0);
    std::snprintf(buffer, sizeof(buffer), "%zd t%.6f|",
                  pick.has_value() ? static_cast<ssize_t>(*pick) : -1, think);
    script += buffer;
  }
  return script;
}

TEST(StudyDeterminismTest, SimulatedUserScriptIsSeedDeterministic) {
  EXPECT_EQ(BehaviorScript(7), BehaviorScript(7));
  EXPECT_NE(BehaviorScript(7), BehaviorScript(8));
}

TEST(StudyDeterminismTest, ConcurrentSameSeedSubjectsProduceIdenticalScripts) {
  // Two threads, same seed, no synchronization between them: identical
  // scripts require every draw to come from the subject's own Rng. TSan
  // turns any hidden shared state into a hard failure.
  std::string scripts[2];
  std::thread a([&] { scripts[0] = BehaviorScript(4242); });
  std::thread b([&] { scripts[1] = BehaviorScript(4242); });
  a.join();
  b.join();
  EXPECT_FALSE(scripts[0].empty());
  EXPECT_EQ(scripts[0], scripts[1]);
}

TEST(StudyDeterminismTest, ThinkTimeDrawsAreReproducibleAndExponential) {
  UserProfile profile;
  profile.seed = 77;
  SimulatedUser one(profile), two(profile);
  double sum = 0.0;
  for (int i = 0; i < 2000; ++i) {
    double draw = one.NextThinkTimeMs(100.0);
    EXPECT_DOUBLE_EQ(two.NextThinkTimeMs(100.0), draw);
    EXPECT_GE(draw, 0.0);
    sum += draw;
  }
  EXPECT_NEAR(sum / 2000.0, 100.0, 15.0);  // mean of Exp(100) draws
  EXPECT_EQ(one.NextThinkTimeMs(0.0), 0.0);
  EXPECT_EQ(one.NextThinkTimeMs(-5.0), 0.0);
}

TEST(StudyDeterminismTest, ScenarioRunsAreSeedDeterministicAcrossThreads) {
  DatasetSpec spec = YelpSpec().Scaled(0.01);
  spec.num_items = 40;
  spec.extract_dimensions_from_text = false;
  auto db = GenerateDataset(spec, 211);

  IrregularPlantingOptions plant;
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db.get(), plant, 17);
  ASSERT_GE(task.irregulars.size(), 1u);

  EngineConfig config;
  config.min_group_size = 3;
  config.operations.max_candidates = 80;
  config.num_threads = 2;  // engine-internal parallelism under TSan too

  UserProfile profile;
  profile.high_cs_expertise = true;
  profile.seed = 31;

  // The same scenario concurrently on two threads over one shared
  // read-only database must reproduce the serial run step for step.
  ScenarioRunResult serial = RunScenario(
      *db, task, ExplorationMode::kRecommendationPowered, profile, 4, config);
  ScenarioRunResult runs[2];
  std::thread a([&] {
    runs[0] = RunScenario(*db, task, ExplorationMode::kRecommendationPowered,
                          profile, 4, config);
  });
  std::thread b([&] {
    runs[1] = RunScenario(*db, task, ExplorationMode::kRecommendationPowered,
                          profile, 4, config);
  });
  a.join();
  b.join();
  EXPECT_EQ(runs[0].cumulative_found, serial.cumulative_found);
  EXPECT_EQ(runs[1].cumulative_found, serial.cumulative_found);
  // Wall time is the one legitimately nondeterministic output.
}

}  // namespace
}  // namespace subdex
