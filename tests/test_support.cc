#include "tests/test_support.h"

#include "util/check.h"
#include "util/random.h"

namespace subdex {
namespace testing_support {

namespace {

Schema ReviewerSchema() {
  return Schema({{"gender", AttributeType::kCategorical},
                 {"age_group", AttributeType::kCategorical},
                 {"occupation", AttributeType::kCategorical}});
}

Schema ItemSchema() {
  return Schema({{"cuisine", AttributeType::kMultiCategorical},
                 {"city", AttributeType::kCategorical},
                 {"neighborhood", AttributeType::kCategorical}});
}

void MustAppend(Table* t, const std::vector<Value>& cells) {
  Status st = t->AppendRow(cells);
  SUBDEX_CHECK_OK(st);
}

}  // namespace

std::unique_ptr<SubjectiveDatabase> MakeTinyRestaurantDb() {
  auto db = std::make_unique<SubjectiveDatabase>(
      ReviewerSchema(), ItemSchema(),
      std::vector<std::string>{"overall", "food", "service", "ambiance"}, 5);

  // Reviewers: 6, mixing genders/ages/occupations.
  MustAppend(&db->reviewers(), {std::string("F"), std::string("young"),
                                std::string("student")});
  MustAppend(&db->reviewers(), {std::string("M"), std::string("young"),
                                std::string("programmer")});
  MustAppend(&db->reviewers(), {std::string("F"), std::string("adult"),
                                std::string("lawyer")});
  MustAppend(&db->reviewers(), {std::string("M"), std::string("adult"),
                                std::string("teacher")});
  MustAppend(&db->reviewers(), {std::string("F"), std::string("young"),
                                std::string("programmer")});
  MustAppend(&db->reviewers(), {std::string("M"), std::string("senior"),
                                std::string("retired")});

  // Restaurants: 4.
  MustAppend(&db->items(),
             {std::vector<std::string>{"burgers", "barbeque"},
              std::string("charlotte"), std::string("downtown")});
  MustAppend(&db->items(),
             {std::vector<std::string>{"japanese", "sushi"},
              std::string("austin"), std::string("midtown")});
  MustAppend(&db->items(), {std::vector<std::string>{"mexican"},
                            std::string("nyc"), std::string("soho")});
  MustAppend(&db->items(),
             {std::vector<std::string>{"pizza", "italian"},
              std::string("nyc"), std::string("williamsburg")});

  // Ratings: (reviewer, item, overall, food, service, ambiance).
  const int ratings[][6] = {
      {0, 3, 4, 3, 5, 4}, {0, 2, 5, 5, 5, 4}, {1, 0, 4, 4, 3, 5},
      {1, 1, 3, 4, 3, 3}, {2, 3, 5, 5, 5, 4}, {2, 1, 2, 3, 2, 2},
      {3, 0, 3, 3, 4, 3}, {3, 2, 4, 4, 4, 5}, {4, 3, 1, 1, 2, 1},
      {4, 1, 5, 5, 4, 5}, {5, 0, 2, 2, 1, 3}, {5, 2, 3, 3, 3, 3},
  };
  for (const auto& r : ratings) {
    Status st = db->AddRating(
        static_cast<RowId>(r[0]), static_cast<RowId>(r[1]),
        {static_cast<double>(r[2]), static_cast<double>(r[3]),
         static_cast<double>(r[4]), static_cast<double>(r[5])});
    SUBDEX_CHECK_OK(st);
  }
  db->FinalizeIndexes();
  return db;
}

std::unique_ptr<SubjectiveDatabase> MakeRandomDb(size_t num_reviewers,
                                                 size_t num_items,
                                                 size_t num_ratings,
                                                 size_t num_dimensions,
                                                 uint64_t seed) {
  Schema reviewer_schema({{"gender", AttributeType::kCategorical},
                          {"age_group", AttributeType::kCategorical}});
  Schema item_schema({{"city", AttributeType::kCategorical},
                      {"cuisine", AttributeType::kMultiCategorical}});
  std::vector<std::string> dims;
  for (size_t d = 0; d < num_dimensions; ++d) {
    dims.push_back("dim" + std::to_string(d));
  }
  auto db = std::make_unique<SubjectiveDatabase>(reviewer_schema, item_schema,
                                                 dims, 5);
  Rng rng(seed);
  const char* genders[] = {"F", "M"};
  const char* ages[] = {"young", "adult", "senior"};
  const char* cities[] = {"nyc", "austin", "detroit", "charlotte"};
  const char* cuisines[] = {"pizza", "sushi", "tacos"};
  for (size_t u = 0; u < num_reviewers; ++u) {
    MustAppend(&db->reviewers(),
               {std::string(genders[rng.UniformU32(2)]),
                std::string(ages[rng.UniformU32(3)])});
  }
  for (size_t i = 0; i < num_items; ++i) {
    size_t n = 1 + rng.UniformU32(2);
    std::vector<std::string> cs;
    for (size_t j = 0; j < n; ++j) cs.push_back(cuisines[rng.UniformU32(3)]);
    MustAppend(&db->items(),
               {std::string(cities[rng.UniformU32(4)]), cs});
  }
  for (size_t r = 0; r < num_ratings; ++r) {
    std::vector<double> scores;
    for (size_t d = 0; d < num_dimensions; ++d) {
      scores.push_back(1 + rng.UniformU32(5));
    }
    Status st = db->AddRating(
        rng.UniformU32(static_cast<uint32_t>(num_reviewers)),
        rng.UniformU32(static_cast<uint32_t>(num_items)), scores);
    SUBDEX_CHECK_OK(st);
  }
  db->FinalizeIndexes();
  return db;
}

}  // namespace testing_support
}  // namespace subdex
