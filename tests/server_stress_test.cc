// Cross-subsystem concurrency stress: the lock-order paths the unit tests
// never exercise together. ci/sanitize.sh thread runs this binary under
// TSan with detect_deadlocks=1, and the armed-detector ci/check.sh stage
// runs it with every Mutex acquisition routed through util/lock_graph.h —
// the same scenarios double as lock-discipline pins on both detectors.
//
//   1. SessionManager churn: concurrent Create / Acquire / Remove threads
//      racing the TTL reaper (tiny TTLs, 1ms reap cadence), so lazy expiry
//      in Acquire, explicit Remove, and reaper sweeps all contend for the
//      same shard locks while leases hold sessions alive.
//   2. The reaper-ordering pin: shard locks must never be taken while
//      "session.reaper" is held (ReaperLoop releases the lock before each
//      sweep; a regression would re-create the detector blind spot).
//   3. HttpServer::Stop during in-flight requests over real sockets:
//      shutdown's mu_/watch_mu_ broadcast racing workers that are mid-
//      handler, mid-watch-registration, and mid-response.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "engine/config.h"
#include "server/http.h"
#include "server/session_manager.h"
#include "tests/test_support.h"
#include "util/lock_graph.h"

namespace subdex {
namespace {

using std::chrono::milliseconds;

std::shared_ptr<const SubjectiveDatabase> SharedTinyDb() {
  return std::shared_ptr<const SubjectiveDatabase>(
      testing_support::MakeTinyRestaurantDb());
}

EngineConfig TinyConfig() {
  EngineConfig config;
  config.min_group_size = 1;
  return config;
}

TEST(SessionManagerStressTest, ConcurrentCreateAcquireRemoveUnderTtlReap) {
  SessionManager::Options options;
  options.max_sessions = 64;
  options.default_ttl = milliseconds(5);  // expires between touches
  options.reap_interval = milliseconds(1);
  SessionManager manager(options);
  manager.Start();

  auto db = SharedTinyDb();
  const EngineConfig config = TinyConfig();

  constexpr int kThreads = 4;
  constexpr int kIterations = 60;
  std::atomic<int> created{0};
  std::atomic<int> acquired{0};
  std::atomic<int> removed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      std::vector<std::string> ids;
      for (int i = 0; i < kIterations; ++i) {
        auto session = manager.Create("tiny", db, config, /*ttl_ms=*/4);
        if (session.ok()) {
          created.fetch_add(1);
          ids.push_back(session.value()->id);
        }
        // Acquire ids this thread made earlier: some are live (lease pins
        // them against the reaper), some already TTL-reaped (empty lease).
        for (const std::string& id : ids) {
          SessionLease lease = manager.Acquire(id);
          if (lease) {
            acquired.fetch_add(1);
            std::this_thread::sleep_for(milliseconds(1));
          }
        }
        // Remove every other session explicitly, racing the reaper for it.
        if (i % 2 == 0 && !ids.empty()) {
          if (manager.Remove(ids.back())) removed.fetch_add(1);
          ids.pop_back();
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  manager.Stop();

  EXPECT_GT(created.load(), 0);
  EXPECT_GT(acquired.load(), 0);
  EXPECT_GT(removed.load(), 0);
  // Everything not explicitly removed expires; a final sweep proves the
  // manager is still coherent after the churn.
  std::this_thread::sleep_for(milliseconds(10));
  (void)manager.ReapExpired();
  EXPECT_EQ(manager.ActiveCount(), 0u);
}

// Pin for the ReaperLoop fix: the reaper releases "session.reaper" before
// each sweep, so the detector's acquired-after graph must never contain an
// edge between the reaper lock and the shard locks — in either direction.
// Meaningful in the armed ci/check.sh stage (where this binary compiles
// with SUBDEX_DEADLOCK_DETECTOR=1 and the graph is live); in unarmed
// builds the graph is empty and the assertions hold vacuously.
TEST(SessionManagerLockDiscipline, ReaperNeverHoldsItsLockAcrossShardSweeps) {
  SessionManager::Options options;
  options.default_ttl = milliseconds(2);
  options.reap_interval = milliseconds(1);
  SessionManager manager(options);
  manager.Start();

  auto db = SharedTinyDb();
  const EngineConfig config = TinyConfig();
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 8; ++i) {
      auto session = manager.Create("tiny", db, config, /*ttl_ms=*/1);
      ASSERT_TRUE(session.ok());
    }
    // Let sessions expire and the background reaper sweep them (shard
    // locks acquired from the reaper thread).
    std::this_thread::sleep_for(milliseconds(5));
  }
  manager.Stop();

  EXPECT_FALSE(lock_graph::HasEdge("session.reaper", "session.shard"));
  EXPECT_FALSE(lock_graph::HasEdge("session.shard", "session.reaper"));
}

// Raw one-shot HTTP client (same shape as server_test.cc's): sends the
// request, then reads until the server closes the connection.
int FetchStatus(uint16_t port, const std::string& target) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close(fd);
    return 0;
  }
  const std::string payload =
      "GET " + target + " HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n";
  size_t sent = 0;
  while (sent < payload.size()) {
    ssize_t n = send(fd, payload.data() + sent, payload.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string text;
  char buf[1024];
  for (;;) {
    ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    text.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  if (text.rfind("HTTP/1.1 ", 0) == 0 && text.size() > 12) {
    return std::stoi(text.substr(9, 3));
  }
  return 0;
}

TEST(HttpServerStressTest, StopDuringInFlightRequests) {
  HttpServer::Options options;
  options.num_workers = 4;
  options.queue_capacity = 16;
  options.watch_interval_ms = 1;
  std::atomic<int> handled{0};
  HttpServer server(options,
                    [&](const HttpRequest&, const CancellationToken&) {
                      handled.fetch_add(1);
                      // Long enough that Stop lands while handlers run.
                      std::this_thread::sleep_for(milliseconds(5));
                      return HttpResponse::Json(200, "{}");
                    });
  ASSERT_TRUE(server.Start().ok());
  const uint16_t port = server.port();

  constexpr int kClients = 8;
  std::atomic<int> responses{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 6; ++i) {
        // After Stop the listener is gone: connect fails and FetchStatus
        // returns 0, which is the expected shutdown-race outcome.
        if (FetchStatus(port, "/r" + std::to_string(c)) == 200) {
          responses.fetch_add(1);
        }
      }
    });
  }
  // Stop mid-storm: in-flight handlers finish (graceful drain), queued and
  // future connections are refused.
  std::this_thread::sleep_for(milliseconds(10));
  server.Stop();
  for (std::thread& t : clients) t.join();

  EXPECT_GT(handled.load(), 0);
  // Every handler that ran before the drain completed its response.
  EXPECT_GE(handled.load(), responses.load());
}

}  // namespace
}  // namespace subdex
