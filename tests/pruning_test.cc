#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pruning/ci_pruner.h"
#include "pruning/mab_pruner.h"
#include "pruning/multi_aggregate_scan.h"
#include "tests/test_support.h"
#include "util/random.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;

// --------------------------------------------------- MultiAggregateScan --

TEST(MultiAggregateScanTest, MatchesDirectBuildPerDimension) {
  auto db = MakeRandomDb(40, 15, 500, 3, 21);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  MultiAggregateScan scan(&all, Side::kReviewer, 1);
  scan.Update(0, 200);
  scan.Update(200, all.size());
  for (size_t d = 0; d < db->num_dimensions(); ++d) {
    RatingMap direct = RatingMap::Build(all, {Side::kReviewer, 1, d});
    RatingMap shared = scan.SnapshotMap(d);
    ASSERT_EQ(shared.num_subgroups(), direct.num_subgroups());
    EXPECT_EQ(shared.group_size(), direct.group_size());
    for (size_t i = 0; i < shared.num_subgroups(); ++i) {
      EXPECT_EQ(shared.subgroups()[i].value, direct.subgroups()[i].value);
      EXPECT_EQ(shared.subgroups()[i].count(), direct.subgroups()[i].count());
      EXPECT_DOUBLE_EQ(shared.subgroups()[i].average(),
                       direct.subgroups()[i].average());
    }
  }
}

TEST(MultiAggregateScanTest, DeactivatedDimensionStopsUpdating) {
  auto db = MakeRandomDb(20, 10, 300, 2, 23);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  MultiAggregateScan scan(&all, Side::kItem, 0);
  scan.Update(0, 100);
  EXPECT_EQ(scan.processed(0), 100u);
  EXPECT_EQ(scan.processed(1), 100u);
  scan.DeactivateDimension(1);
  EXPECT_EQ(scan.num_active(), 1u);
  scan.Update(100, 200);
  EXPECT_EQ(scan.processed(0), 200u);
  EXPECT_EQ(scan.processed(1), 100u);
  // Deactivating twice is a no-op.
  scan.DeactivateDimension(1);
  EXPECT_EQ(scan.num_active(), 1u);
}

TEST(MultiAggregateScanTest, WorkCountsActiveDimensionsOnly) {
  auto db = MakeRandomDb(20, 10, 300, 3, 25);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  MultiAggregateScan scan(&all, Side::kReviewer, 0);
  EXPECT_EQ(scan.Update(0, 50), 50u * 3u);
  scan.DeactivateDimension(0);
  scan.DeactivateDimension(2);
  EXPECT_EQ(scan.Update(50, 100), 50u * 1u);
  scan.DeactivateDimension(1);
  EXPECT_EQ(scan.Update(100, 150), 0u);
}

// ------------------------------------------------------------ CI pruner --

TEST(CiPrunerTest, EnvelopeIsMaxOfActiveBounds) {
  CandidateIntervals cand;
  cand.criteria[0] = {0.1, 0.3, true};
  cand.criteria[1] = {0.5, 0.7, true};
  cand.criteria[2] = {0.2, 0.4, true};
  cand.criteria[3] = {0.0, 0.2, true};
  cand.weight = 1.0;
  ComputeEnvelope(&cand);
  // Criteria 0 ([.1,.3]), 2 ([.2,.4]) and 3 ([0,.2]) are dominated by 1
  // ([.5,.7]) or by each other... 0's ub(.3) < 1's lb(.5): dominated.
  EXPECT_FALSE(cand.criteria[0].active);
  EXPECT_TRUE(cand.criteria[1].active);
  EXPECT_FALSE(cand.criteria[2].active);
  EXPECT_FALSE(cand.criteria[3].active);
  EXPECT_DOUBLE_EQ(cand.lb, 0.5);
  EXPECT_DOUBLE_EQ(cand.ub, 0.7);
}

TEST(CiPrunerTest, OverlappingIntervalsAllSurvive) {
  CandidateIntervals cand;
  cand.criteria[0] = {0.2, 0.6, true};
  cand.criteria[1] = {0.3, 0.5, true};
  cand.criteria[2] = {0.1, 0.4, true};
  cand.criteria[3] = {0.35, 0.8, true};
  cand.weight = 0.5;
  ComputeEnvelope(&cand);
  EXPECT_TRUE(cand.criteria[0].active);
  EXPECT_TRUE(cand.criteria[1].active);
  EXPECT_TRUE(cand.criteria[3].active);
  // Envelope = weight * [max lb, max ub] over active criteria.
  EXPECT_DOUBLE_EQ(cand.ub, 0.5 * 0.8);
  EXPECT_DOUBLE_EQ(cand.lb, 0.5 * 0.35);
}

CandidateIntervals MakeCand(double lb, double ub) {
  CandidateIntervals c;
  c.criteria[0] = {lb, ub, true};
  for (int i = 1; i < 4; ++i) c.criteria[i] = {0.0, 0.0, false};
  c.lb = lb;
  c.ub = ub;
  return c;
}

TEST(CiPrunerTest, PrunesOnlyProvablyBeatenCandidates) {
  // Top-2 lower bounds are {0.6, 0.5}; lowest top lb = 0.5.
  std::vector<CandidateIntervals> cands = {
      MakeCand(0.6, 0.9), MakeCand(0.5, 0.8),
      MakeCand(0.2, 0.55),  // ub 0.55 >= 0.5: kept
      MakeCand(0.1, 0.3),   // ub 0.3 < 0.5: pruned
  };
  std::vector<bool> prune = CiPrune(cands, 2);
  EXPECT_FALSE(prune[0]);
  EXPECT_FALSE(prune[1]);
  EXPECT_FALSE(prune[2]);
  EXPECT_TRUE(prune[3]);
}

TEST(CiPrunerTest, NoPruningWhenFewerThanKPrime) {
  std::vector<CandidateIntervals> cands = {MakeCand(0.1, 0.2),
                                           MakeCand(0.3, 0.4)};
  std::vector<bool> prune = CiPrune(cands, 5);
  EXPECT_FALSE(prune[0]);
  EXPECT_FALSE(prune[1]);
}

TEST(CiPrunerTest, ThresholdIsKthLargestLowerBoundOverall) {
  // Regression for a weakened threshold: Algorithm 3 prunes against the
  // k'-th largest lb over ALL candidates, not the minimum lb among the
  // top-k'-by-ub candidates. Here the two differ: B has the 2nd-highest
  // ub but a tiny lb, so the buggy threshold was 0.1 and pruned nothing,
  // while the correct threshold is C's lb = 0.6, which prunes D.
  std::vector<CandidateIntervals> cands = {
      MakeCand(0.8, 0.9),   // A
      MakeCand(0.1, 0.85),  // B: wide interval, high ub, tiny lb
      MakeCand(0.6, 0.7),   // C
      MakeCand(0.3, 0.5),   // D: beaten w.h.p. by A and C
  };
  std::vector<bool> prune = CiPrune(cands, 2);
  EXPECT_FALSE(prune[0]);
  EXPECT_FALSE(prune[1]);  // ub 0.85 >= 0.6: could still make top-2
  EXPECT_FALSE(prune[2]);
  EXPECT_TRUE(prune[3]) << "ub 0.5 < 2nd-largest lb 0.6 must be pruned";
}

TEST(CiPrunerTest, WideIntervalsPruneNothing) {
  std::vector<CandidateIntervals> cands;
  for (int i = 0; i < 10; ++i) cands.push_back(MakeCand(0.0, 1.0));
  std::vector<bool> prune = CiPrune(cands, 3);
  for (bool p : prune) EXPECT_FALSE(p);
}

// The soundness property: with exact intervals (a candidate's true value
// always inside), pruned candidates can never belong to the true top-k'.
class CiPruneSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(CiPruneSoundnessTest, NeverPrunesTrueTopK) {
  Rng rng(8000 + GetParam());
  const size_t n = 20;
  const size_t k = 4;
  std::vector<double> truth(n);
  std::vector<CandidateIntervals> cands(n);
  for (size_t i = 0; i < n; ++i) {
    truth[i] = rng.UniformDouble();
    double eps = rng.UniformDouble() * 0.3;
    cands[i] = MakeCand(std::max(0.0, truth[i] - eps),
                        std::min(1.0, truth[i] + eps));
  }
  std::vector<bool> prune = CiPrune(cands, k);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return truth[a] > truth[b]; });
  for (size_t r = 0; r < k; ++r) {
    EXPECT_FALSE(prune[order[r]]) << "pruned true rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, CiPruneSoundnessTest,
                         ::testing::Range(0, 25));

// ----------------------------------------------------------- MAB (SAR) --

TEST(SarTest, NoDecisionWhenEveryArmFits) {
  EXPECT_EQ(SarStep({0.5, 0.4}, 3).action, SarAction::kNone);
  EXPECT_EQ(SarStep({}, 2).action, SarAction::kNone);
}

TEST(SarTest, AcceptsClearWinner) {
  // means: top 0.9, k'=1 -> delta1 = 0.9-0.3 = 0.6; delta2 = 0.9-0.2 ...
  // With k_remaining=1: delta1 = m[0]-m[1], delta2 = m[0]-m[last].
  SarDecision d = SarStep({0.9, 0.3, 0.25, 0.2}, 1);
  // delta1 = 0.6 > delta2's competitor? delta2 = m[k'-1]-m[last] = 0.9-0.2=0.7
  // 0.6 < 0.7 -> reject bottom.
  EXPECT_EQ(d.action, SarAction::kRejectBottom);
  EXPECT_EQ(d.index, 3u);
}

TEST(SarTest, AcceptTopWhenGapAtTopDominates) {
  // k_remaining = 2. sorted: .9 .3 .28 .27
  // delta1 = m[0]-m[2] = .62; delta2 = m[1]-m[3] = .03 -> accept top.
  SarDecision d = SarStep({0.9, 0.3, 0.28, 0.27}, 2);
  EXPECT_EQ(d.action, SarAction::kAcceptTop);
  EXPECT_EQ(d.index, 0u);
}

TEST(SarTest, RejectsWhenAllSlotsTaken) {
  SarDecision d = SarStep({0.5, 0.1}, 0);
  EXPECT_EQ(d.action, SarAction::kRejectBottom);
  EXPECT_EQ(d.index, 1u);
}

TEST(SarTest, IndicesReferToInputPositions) {
  // Unsorted input: max at position 2, min at position 0.
  SarDecision d = SarStep({0.05, 0.5, 0.95, 0.5}, 2);
  if (d.action == SarAction::kAcceptTop) {
    EXPECT_EQ(d.index, 2u);
  } else {
    EXPECT_EQ(d.index, 0u);
  }
}

// Running full SAR (one step at a time, simulating exact means) must end
// with exactly the true top-k' arms.
class SarConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SarConvergenceTest, FullRunKeepsTrueTopK) {
  Rng rng(9000 + GetParam());
  const size_t n = 12;
  const size_t k = 1 + GetParam() % 4;
  std::vector<double> means(n);
  for (double& m : means) m = rng.UniformDouble();

  std::vector<size_t> open(n);
  for (size_t i = 0; i < n; ++i) open[i] = i;
  std::vector<size_t> accepted;
  while (open.size() + accepted.size() > k || !open.empty()) {
    std::vector<double> open_means;
    for (size_t i : open) open_means.push_back(means[i]);
    SarDecision d = SarStep(open_means, k - accepted.size());
    if (d.action == SarAction::kNone) {
      // All remaining fit: accept them all.
      accepted.insert(accepted.end(), open.begin(), open.end());
      open.clear();
      break;
    }
    size_t arm = open[d.index];
    open.erase(open.begin() + static_cast<long>(d.index));
    if (d.action == SarAction::kAcceptTop) accepted.push_back(arm);
  }
  ASSERT_EQ(accepted.size(), k);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return means[a] > means[b]; });
  std::set<size_t> expected(order.begin(), order.begin() + k);
  for (size_t a : accepted) EXPECT_TRUE(expected.count(a) > 0);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SarConvergenceTest,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace subdex
