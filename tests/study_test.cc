#include <gtest/gtest.h>

#include "baselines/smart_drilldown.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "study/detection.h"
#include "study/experiment.h"
#include "study/scenario_runner.h"
#include "study/simulated_user.h"
#include "tests/test_support.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;

DatasetSpec StudySpec() {
  DatasetSpec spec = YelpSpec().Scaled(0.01);
  spec.num_items = 40;
  spec.extract_dimensions_from_text = false;  // keep unit tests fast
  return spec;
}

EngineConfig StudyConfig() {
  EngineConfig config;
  config.min_group_size = 3;
  config.operations.max_candidates = 80;
  config.num_threads = 2;
  return config;
}

// ----------------------------------------------------------- Detection ---

TEST(DetectionTest, SelectionAloneExposesIrregularGroup) {
  auto db = MakeRandomDb(50, 20, 600, 2, 101);
  // Plant manually: all records of F reviewers floored on dimension 1.
  ValueCode f = db->reviewers().LookupValue(0, "F");
  IrregularGroup group;
  group.side = Side::kReviewer;
  group.description = Predicate({{0, f}});
  group.dimension = 1;
  for (RecordId r = 0; r < db->num_records(); ++r) {
    if (db->reviewers().CodeAt(0, db->reviewer_of(r)) == f) {
      db->SetScore(1, r, 1);
    }
  }
  // Selection pinning the description: any dim-1 map of that group exposes.
  GroupSelection sel;
  sel.reviewer_pred = group.description;
  RatingGroup g = RatingGroup::Materialize(*db, sel);
  RatingMap map = RatingMap::Build(g, {Side::kItem, 0, 1});
  EXPECT_TRUE(ExposesIrregularGroup(sel, map, group));
  // Wrong dimension: not exposed.
  RatingMap wrong_dim = RatingMap::Build(g, {Side::kItem, 0, 0});
  EXPECT_FALSE(ExposesIrregularGroup(sel, wrong_dim, group));
}

TEST(DetectionTest, SubgroupExposesIrregularGroup) {
  auto db = MakeRandomDb(50, 20, 600, 2, 103);
  ValueCode f = db->reviewers().LookupValue(0, "F");
  IrregularGroup group;
  group.side = Side::kReviewer;
  group.description = Predicate({{0, f}});
  group.dimension = 0;
  for (RecordId r = 0; r < db->num_records(); ++r) {
    if (db->reviewers().CodeAt(0, db->reviewer_of(r)) == f) {
      db->SetScore(0, r, 1);
    }
  }
  // No selection, but the map groups by gender on dimension 0: the F bar
  // sits at average 1.
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap by_gender = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  EXPECT_TRUE(ExposesIrregularGroup(GroupSelection{}, by_gender, group));
  // Grouping by the other side cannot pin a reviewer description.
  RatingMap by_city = RatingMap::Build(all, {Side::kItem, 0, 0});
  EXPECT_FALSE(ExposesIrregularGroup(GroupSelection{}, by_city, group));
}

TEST(DetectionTest, TwoAttributeDescriptionNeedsBoth) {
  auto db = MakeRandomDb(80, 20, 900, 1, 105);
  ValueCode f = db->reviewers().LookupValue(0, "F");
  ValueCode young = db->reviewers().LookupValue(1, "young");
  IrregularGroup group;
  group.side = Side::kReviewer;
  group.description = Predicate({{0, f}, {1, young}});
  group.dimension = 0;
  for (RecordId r = 0; r < db->num_records(); ++r) {
    RowId u = db->reviewer_of(r);
    if (db->reviewers().CodeAt(0, u) == f &&
        db->reviewers().CodeAt(1, u) == young) {
      db->SetScore(0, r, 1);
    }
  }
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  // Grouping by gender alone leaves the young-F signal diluted by adult-F
  // records; context implies only <gender=F>, not the full description.
  RatingMap by_gender = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  EXPECT_FALSE(ExposesIrregularGroup(GroupSelection{}, by_gender, group));
  // Selecting gender=F and grouping by age pins both attributes.
  GroupSelection sel;
  sel.reviewer_pred = Predicate({{0, f}});
  RatingGroup g = RatingGroup::Materialize(*db, sel);
  RatingMap by_age = RatingMap::Build(g, {Side::kReviewer, 1, 0});
  EXPECT_TRUE(ExposesIrregularGroup(sel, by_age, group));
}

TEST(DetectionTest, InsightExposureRequiresExactMapAndExtremeness) {
  auto db = MakeRandomDb(60, 20, 800, 1, 107);
  ValueCode f = db->reviewers().LookupValue(0, "F");
  for (RecordId r = 0; r < db->num_records(); ++r) {
    if (db->reviewers().CodeAt(0, db->reviewer_of(r)) == f) {
      db->SetScore(0, r, 5);
    }
  }
  PlantedInsight insight;
  insight.side = Side::kReviewer;
  insight.attribute = 0;
  insight.value = f;
  insight.dimension = 0;
  insight.is_highest = true;

  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  RatingMap right = RatingMap::Build(all, {Side::kReviewer, 0, 0});
  EXPECT_TRUE(ExposesInsight(right, insight));
  RatingMap wrong_attr = RatingMap::Build(all, {Side::kReviewer, 1, 0});
  EXPECT_FALSE(ExposesInsight(wrong_attr, insight));
  // Direction matters.
  insight.is_highest = false;
  EXPECT_FALSE(ExposesInsight(right, insight));
}

// ------------------------------------------------------- SimulatedUser ---

TEST(SimulatedUserTest, ExpertiseRaisesReadProbability) {
  UserProfile low;
  UserProfile high;
  high.high_cs_expertise = true;
  EXPECT_GT(SimulatedUser(high).read_probability(),
            SimulatedUser(low).read_probability());
  // Domain knowledge barely moves it (paper: no dependence).
  UserProfile domain = low;
  domain.high_domain_knowledge = true;
  EXPECT_NEAR(SimulatedUser(domain).read_probability(),
              SimulatedUser(low).read_probability(), 0.05);
}

TEST(SimulatedUserTest, NoticesRateMatchesProbability) {
  UserProfile p;
  p.high_cs_expertise = true;
  p.seed = 5;
  SimulatedUser user(p);
  int hits = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (user.Notices()) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, user.read_probability(), 0.03);
}

TEST(SimulatedUserTest, MostlyFollowsTopRecommendation) {
  UserProfile p;
  p.high_cs_expertise = true;
  p.seed = 7;
  SimulatedUser user(p);
  std::vector<Recommendation> recs(3);
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i].operation.target.reviewer_pred =
        Predicate({{0, static_cast<ValueCode>(i)}});
  }
  int top = 0, own = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto pick = user.ChooseRecommendation(recs, /*visited=*/{});
    if (!pick.has_value()) {
      ++own;
    } else if (*pick == 0) {
      ++top;
    }
  }
  EXPECT_GT(top, n / 2);
  EXPECT_LT(own, n / 5);
  EXPECT_GT(own, 0);
}

TEST(SimulatedUserTest, SkipsAlreadyVisitedRecommendations) {
  UserProfile p;
  p.high_cs_expertise = true;
  p.seed = 9;
  SimulatedUser user(p);
  std::vector<Recommendation> recs(3);
  for (size_t i = 0; i < recs.size(); ++i) {
    recs[i].operation.target.reviewer_pred =
        Predicate({{0, static_cast<ValueCode>(i)}});
  }
  // The top recommendation's target has been examined already; the subject
  // should never re-pick it while fresh options exist.
  std::vector<GroupSelection> visited = {recs[0].operation.target};
  for (int i = 0; i < 500; ++i) {
    auto pick = user.ChooseRecommendation(recs, visited);
    if (pick.has_value()) {
      EXPECT_NE(*pick, 0u);
    }
  }
}

TEST(SimulatedUserTest, OwnOperationIsValidSingleEdit) {
  auto db = MakeRandomDb(40, 15, 400, 1, 109);
  EngineConfig config = StudyConfig();
  SdeEngine engine(db.get(), config);
  StepResult step = engine.ExecuteStep(GroupSelection{}, false);
  for (bool expert : {false, true}) {
    UserProfile p;
    p.high_cs_expertise = expert;
    p.seed = 11;
    SimulatedUser user(p);
    auto own = user.ChooseOwnOperation(*db, step);
    ASSERT_TRUE(own.has_value());
    EXPECT_LE(step.selection.EditDistance(*own), 1u);
    EXPECT_NE(*own, step.selection);
  }
}

// ------------------------------------------------------ ScenarioRunner ---

class ScenarioModeTest
    : public ::testing::TestWithParam<ExplorationMode> {};

TEST_P(ScenarioModeTest, RunsToCompletionAndCountsMonotonically) {
  auto db = GenerateDataset(StudySpec(), 211);
  IrregularPlantingOptions plant;
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db.get(), plant, 17);
  ASSERT_EQ(task.irregulars.size(), 2u);

  UserProfile profile;
  profile.high_cs_expertise = true;
  profile.seed = 31;
  ScenarioRunResult run =
      RunScenario(*db, task, GetParam(), profile, 5, StudyConfig());
  ASSERT_GE(run.cumulative_found.size(), 1u);
  ASSERT_LE(run.cumulative_found.size(), 5u);
  for (size_t i = 1; i < run.cumulative_found.size(); ++i) {
    EXPECT_GE(run.cumulative_found[i], run.cumulative_found[i - 1]);
  }
  EXPECT_LE(run.found(), task.total());
  EXPECT_GT(run.total_elapsed_ms, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ScenarioModeTest,
    ::testing::Values(ExplorationMode::kUserDriven,
                      ExplorationMode::kRecommendationPowered,
                      ExplorationMode::kFullyAutomated));

TEST(ScenarioRunnerTest, InsightScenarioFindsPlantedInsights) {
  auto db = GenerateDataset(StudySpec(), 223);
  InsightPlantingOptions plant;
  plant.count = 5;
  plant.min_records = 40;  // prominent insights, as in the Kaggle notebooks
  ScenarioTask task;
  task.kind = ScenarioKind::kInsightExtraction;
  task.insights = PlantInsights(db.get(), plant, 19);
  ASSERT_GE(task.insights.size(), 3u);

  UserProfile profile;
  profile.high_cs_expertise = true;
  profile.seed = 37;
  ScenarioRunResult run =
      RunScenario(*db, task, ExplorationMode::kRecommendationPowered, profile,
                  10, StudyConfig());
  // With 10 steps x 3 maps and dimension weighting sweeping attributes,
  // a guided expert finds at least one planted insight.
  EXPECT_GE(run.found(), 1u);
}

TEST(ScenarioRunnerTest, BaselineHarnessRuns) {
  auto db = GenerateDataset(StudySpec(), 227);
  IrregularPlantingOptions plant;
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db.get(), plant, 23);
  ASSERT_FALSE(task.irregulars.empty());

  SmartDrillDown sdd;
  UserProfile profile;
  profile.high_cs_expertise = true;
  ScenarioRunResult run =
      RunScenarioWithBaseline(*db, task, sdd, profile, 5, StudyConfig());
  EXPECT_GE(run.cumulative_found.size(), 1u);
  EXPECT_LE(run.found(), task.total());
}

// ---------------------------------------------------------- Experiment ---

TEST(ExperimentTest, TreatmentAggregatesSubjects) {
  auto db = GenerateDataset(StudySpec(), 229);
  IrregularPlantingOptions plant;
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db.get(), plant, 29);

  TreatmentOutcome outcome = RunTreatmentGroup(
      *db, task, ExplorationMode::kFullyAutomated, /*high_cs=*/false,
      /*high_domain=*/false, /*subjects=*/4, /*num_steps=*/4, StudyConfig(),
      /*seed=*/5);
  EXPECT_EQ(outcome.subjects, 4u);
  EXPECT_GE(outcome.mean_found, 0.0);
  EXPECT_LE(outcome.mean_found, 2.0);
}

TEST(ExperimentTest, RecallCurveIsMonotoneAndBounded) {
  auto db = GenerateDataset(StudySpec(), 233);
  IrregularPlantingOptions plant;
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db.get(), plant, 31);

  std::vector<double> curve = AverageRecallCurve(
      *db, task, ExplorationMode::kRecommendationPowered, /*high_cs=*/true,
      /*subjects=*/3, /*num_steps=*/6, StudyConfig(), /*seed=*/7);
  ASSERT_EQ(curve.size(), 6u);
  for (size_t i = 0; i < curve.size(); ++i) {
    EXPECT_GE(curve[i], 0.0);
    EXPECT_LE(curve[i], 1.0);
    if (i > 0) {
      EXPECT_GE(curve[i], curve[i - 1] - 1e-12);
    }
  }
}

}  // namespace
}  // namespace subdex
