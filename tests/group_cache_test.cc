#include <gtest/gtest.h>

#include "engine/group_cache.h"
#include "engine/sde_engine.h"
#include "tests/test_support.h"
#include "util/thread_pool.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

GroupSelection SelectionOn(size_t attr, ValueCode code) {
  GroupSelection sel;
  sel.reviewer_pred = Predicate({{attr, code}});
  return sel;
}

TEST(GroupCacheTest, CachedEqualsFresh) {
  auto db = MakeRandomDb(40, 15, 500, 2, 201);
  RatingGroupCache cache(db.get(), 16);
  for (ValueCode v = 0; v < 2; ++v) {
    GroupSelection sel = SelectionOn(0, v);
    RatingGroup fresh = RatingGroup::Materialize(*db, sel);
    RatingGroup first = cache.Get(sel);
    RatingGroup second = cache.Get(sel);  // hit
    EXPECT_EQ(first.records(), fresh.records());
    EXPECT_EQ(second.records(), fresh.records());
  }
  RatingGroupCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST(GroupCacheTest, ZeroCapacityDisables) {
  auto db = MakeTinyRestaurantDb();
  RatingGroupCache cache(db.get(), 0);
  GroupSelection sel;
  cache.Get(sel);
  cache.Get(sel);
  RatingGroupCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(GroupCacheTest, LruEviction) {
  auto db = MakeRandomDb(30, 10, 300, 1, 203);
  RatingGroupCache cache(db.get(), 2);
  GroupSelection a = SelectionOn(0, 0);
  GroupSelection b = SelectionOn(0, 1);
  GroupSelection c = SelectionOn(1, 0);
  cache.Get(a);  // miss, cache {a}
  cache.Get(b);  // miss, cache {b, a}
  cache.Get(a);  // hit,  cache {a, b}
  cache.Get(c);  // miss, evicts b -> {c, a}
  cache.Get(b);  // miss again (was evicted)
  RatingGroupCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 4u);
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_LE(stats.entries, 2u);
}

TEST(GroupCacheTest, DistinguishesSides) {
  auto db = MakeTinyRestaurantDb();
  RatingGroupCache cache(db.get(), 8);
  GroupSelection reviewer_side;
  reviewer_side.reviewer_pred = Predicate({{0, 0}});
  GroupSelection item_side;
  item_side.item_pred = Predicate({{0, 0}});
  RatingGroup a = cache.Get(reviewer_side);
  RatingGroup b = cache.Get(item_side);
  EXPECT_EQ(cache.stats().misses, 2u);  // different keys, both missed
  EXPECT_NE(a.records(), b.records());
}

TEST(GroupCacheTest, ClearResetsEntries) {
  auto db = MakeTinyRestaurantDb();
  RatingGroupCache cache(db.get(), 8);
  cache.Get(GroupSelection{});
  cache.Clear();
  cache.Get(GroupSelection{});
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(GroupCacheTest, ThreadSafeUnderConcurrentAccess) {
  auto db = MakeRandomDb(50, 20, 800, 1, 207);
  RatingGroupCache cache(db.get(), 8);
  ThreadPool pool(4);
  std::vector<GroupSelection> selections;
  for (ValueCode v = 0; v < 2; ++v) selections.push_back(SelectionOn(0, v));
  for (ValueCode v = 0; v < 3; ++v) selections.push_back(SelectionOn(1, v));
  std::atomic<size_t> total_records{0};
  pool.ParallelFor(200, [&](size_t i) {
    RatingGroup g = cache.Get(selections[i % selections.size()]);
    total_records.fetch_add(g.size());
  });
  // Every call returned the correct group (sums match the fresh answers).
  size_t expected = 0;
  for (size_t i = 0; i < 200; ++i) {
    expected +=
        RatingGroup::Materialize(*db, selections[i % selections.size()]).size();
  }
  EXPECT_EQ(total_records.load(), expected);
}

TEST(GroupCacheTest, HitsShareOneRecordList) {
  auto db = MakeRandomDb(30, 10, 300, 1, 211);
  RatingGroupCache cache(db.get(), 8);
  GroupSelection sel = SelectionOn(0, 0);
  RatingGroup first = cache.Get(sel);   // miss: materializes
  RatingGroup second = cache.Get(sel);  // hit
  RatingGroup third = cache.Get(sel);   // hit
  // Hits hand out the cached list itself, not a copy.
  EXPECT_EQ(&first.records(), &second.records());
  EXPECT_EQ(&second.records(), &third.records());
}

TEST(GroupCacheTest, SingleFlightCoalescesConcurrentMisses) {
  auto db = MakeRandomDb(60, 20, 2000, 1, 213);
  RatingGroupCache cache(db.get(), 8);
  GroupSelection sel = SelectionOn(0, 0);
  size_t expected_size = RatingGroup::Materialize(*db, sel).size();
  ThreadPool pool(4);
  std::atomic<size_t> wrong{0};
  const size_t kCalls = 64;
  pool.ParallelFor(kCalls, [&](size_t) {
    if (cache.Get(sel).size() != expected_size) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0u);
  RatingGroupCache::Stats stats = cache.stats();
  // Exactly one materialization: concurrent misses either coalesced onto
  // the in-flight scan or arrived late enough to hit.
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits + stats.coalesced + stats.misses, kCalls);
}

TEST(GroupCacheTest, ZeroCapacityNeverInsertsOrCountsHitsAndEvictions) {
  // The capacity()==0 contract, pinned exactly: a disabled cache
  // materializes on every call and must not route through the cache or
  // single-flight machinery — no entries, no hits, no coalescing, no
  // evictions, one counted miss per call.
  auto db = MakeRandomDb(30, 10, 300, 1, 219);
  RatingGroupCache cache(db.get(), 0);
  EXPECT_EQ(cache.capacity(), 0u);
  GroupSelection sel = SelectionOn(0, 0);
  size_t expected_size = RatingGroup::Materialize(*db, sel).size();
  const size_t kCalls = 16;
  for (size_t i = 0; i < kCalls; ++i) {
    EXPECT_EQ(cache.Get(sel).size(), expected_size);
  }
  RatingGroupCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, kCalls);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 0u);
  cache.Clear();  // harmless on a disabled cache
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(GroupCacheTest, ZeroCapacityConcurrentGetsNeverCoalesce) {
  // With caching disabled there is no single-flight rendezvous to park
  // on: every concurrent caller scans independently and returns the right
  // records. (A disabled cache that still registered flights would count
  // coalesced waiters here.)
  auto db = MakeRandomDb(60, 20, 2000, 1, 221);
  RatingGroupCache cache(db.get(), 0);
  GroupSelection sel = SelectionOn(0, 0);
  size_t expected_size = RatingGroup::Materialize(*db, sel).size();
  ThreadPool pool(4);
  std::atomic<size_t> wrong{0};
  const size_t kCalls = 32;
  pool.ParallelFor(kCalls, [&](size_t) {
    if (cache.Get(sel).size() != expected_size) wrong.fetch_add(1);
  });
  EXPECT_EQ(wrong.load(), 0u);
  RatingGroupCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, kCalls);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.coalesced, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST(GroupCacheTest, EvictionCounterIsExact) {
  // Every insert beyond capacity evicts exactly one entry: over N distinct
  // keys through a capacity-C cache, evictions == N - C and the resident
  // count ends at C. (This is what makes subdex_group_cache_evictions_total
  // trustworthy for sizing the cache from /metrics.)
  auto db = MakeRandomDb(40, 15, 500, 1, 223);
  const size_t kCapacity = 3;
  RatingGroupCache cache(db.get(), kCapacity);
  std::vector<GroupSelection> keys;
  for (ValueCode v = 0; v < 4; ++v) keys.push_back(SelectionOn(0, v));
  for (ValueCode v = 0; v < 4; ++v) keys.push_back(SelectionOn(1, v));
  for (const GroupSelection& key : keys) cache.Get(key);
  RatingGroupCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, keys.size());
  EXPECT_EQ(stats.evictions, keys.size() - kCapacity);
  EXPECT_EQ(stats.entries, kCapacity);
  // Re-scanning the key set most-recent-first: the kCapacity resident
  // keys hit, the rest were evicted (misses, each evicting one more
  // entry). (A forward rescan would thrash the LRU and hit nothing.)
  for (auto it = keys.rbegin(); it != keys.rend(); ++it) cache.Get(*it);
  stats = cache.stats();
  EXPECT_EQ(stats.misses, 2 * keys.size() - kCapacity);
  EXPECT_EQ(stats.hits, kCapacity);
  EXPECT_EQ(stats.evictions, 2 * (keys.size() - kCapacity));
  EXPECT_EQ(stats.entries, kCapacity);
}

TEST(GroupCacheTest, EngineResultsUnchangedByCaching) {
  auto db = MakeRandomDb(40, 15, 600, 2, 209);
  EngineConfig with_cache;
  with_cache.min_group_size = 1;
  with_cache.operations.max_candidates = 40;
  with_cache.num_threads = 2;
  EngineConfig without_cache = with_cache;
  without_cache.group_cache_capacity = 0;

  SdeEngine cached(db.get(), with_cache);
  SdeEngine plain(db.get(), without_cache);
  for (int s = 0; s < 2; ++s) {
    StepResult a = cached.ExecuteStep(GroupSelection{}, true);
    StepResult b = plain.ExecuteStep(GroupSelection{}, true);
    ASSERT_EQ(a.maps.size(), b.maps.size());
    for (size_t i = 0; i < a.maps.size(); ++i) {
      EXPECT_TRUE(a.maps[i].map.key() == b.maps[i].map.key());
    }
    ASSERT_EQ(a.recommendations.size(), b.recommendations.size());
    for (size_t i = 0; i < a.recommendations.size(); ++i) {
      EXPECT_EQ(a.recommendations[i].operation.target,
                b.recommendations[i].operation.target);
      EXPECT_DOUBLE_EQ(a.recommendations[i].utility,
                       b.recommendations[i].utility);
    }
  }
  EXPECT_GT(cached.group_cache().stats().hits, 0u);
}

}  // namespace
}  // namespace subdex
