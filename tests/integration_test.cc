// End-to-end tests exercising the full SubDEx stack: synthetic dataset
// generation (including the text-extraction pipeline), planting, all three
// exploration modes, the published baselines, and the scalability variants.

#include <gtest/gtest.h>

#include <set>

#include "baselines/qagview.h"
#include "baselines/smart_drilldown.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "datagen/transforms.h"
#include "study/experiment.h"

namespace subdex {
namespace {

DatasetSpec SmallYelp() {
  DatasetSpec spec = YelpSpec().Scaled(0.02);
  spec.num_items = 50;
  return spec;  // text pipeline stays ON: full ingestion path
}

EngineConfig DefaultConfig() {
  EngineConfig config;  // paper defaults: k=3, o=3, l=3, n=10
  config.num_threads = 2;
  config.operations.max_candidates = 100;
  return config;
}

TEST(IntegrationTest, FullPipelineOnTextExtractedYelp) {
  auto db = GenerateDataset(SmallYelp(), 777);
  EXPECT_EQ(db->num_dimensions(), 4u);

  ExplorationSession session(db.get(), DefaultConfig(),
                             ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  size_t steps = session.RunAutomated(4);
  EXPECT_EQ(steps, 4u);
  EXPECT_EQ(session.path().size(), 5u);
  for (const StepResult& step : session.path()) {
    EXPECT_EQ(step.maps.size(), 3u);
    // Each displayed map carries valid scores.
    for (const ScoredRatingMap& m : step.maps) {
      EXPECT_GE(m.utility, 0.0);
      EXPECT_LE(m.utility, 1.0);
      EXPECT_LE(m.dw_utility, m.utility + 1e-12);
    }
  }
  // Consecutive selections differ by at most 2 edits (the operation space).
  for (size_t i = 1; i < session.path().size(); ++i) {
    EXPECT_LE(session.path()[i - 1].selection.EditDistance(
                  session.path()[i].selection),
              2u);
  }
  // History grew by k per step.
  EXPECT_EQ(session.engine().seen().total(), 5u * 3u);
}

TEST(IntegrationTest, DimensionWeightingBalancesDisplayedDimensions) {
  auto db = GenerateDataset(SmallYelp(), 779);
  EngineConfig config = DefaultConfig();
  ExplorationSession session(db.get(), config,
                             ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  session.RunAutomated(6);
  const SeenMapsTracker& seen = session.engine().seen();
  size_t dims_used = 0;
  for (size_t d = 0; d < db->num_dimensions(); ++d) {
    if (seen.dimension_count(d) > 0) ++dims_used;
  }
  // With 21 maps displayed and DW weighting, every dimension appears.
  EXPECT_EQ(dims_used, db->num_dimensions());
}

TEST(IntegrationTest, BaselinesProduceUsableOperationsOnRealPipeline) {
  auto db = GenerateDataset(SmallYelp(), 781);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SmartDrillDown sdd;
  Qagview qv;
  for (const NextActionBaseline* baseline :
       std::initializer_list<const NextActionBaseline*>{&sdd, &qv}) {
    std::vector<Operation> ops = baseline->Recommend(all, 3);
    ASSERT_FALSE(ops.empty()) << baseline->name();
    for (const Operation& op : ops) {
      RatingGroup g = RatingGroup::Materialize(*db, op.target);
      EXPECT_GT(g.size(), 0u) << baseline->name();
      EXPECT_LT(g.size(), all.size()) << baseline->name();
    }
  }
}

TEST(IntegrationTest, TransformsComposeWithEngine) {
  auto db = GenerateDataset(SmallYelp(), 783);
  auto sampled = SampleReviewers(*db, 0.5, 1);
  auto dropped = DropAttributes(*sampled, 8, 2);
  auto limited = LimitAttributeValues(*dropped, 5, 3);
  SdeEngine engine(limited.get(), DefaultConfig());
  StepResult step = engine.ExecuteStep(GroupSelection{}, true);
  EXPECT_FALSE(step.maps.empty());
  EXPECT_FALSE(step.recommendations.empty());
}

TEST(IntegrationTest, PruningVariantsAgreeOnDisplayedUtilityEndToEnd) {
  auto db = GenerateDataset(SmallYelp(), 785);
  auto run = [&](PruningScheme scheme) {
    EngineConfig config = DefaultConfig();
    config.pruning = scheme;
    SdeEngine engine(db.get(), config);
    StepResult step = engine.ExecuteStep(GroupSelection{}, false);
    return step;
  };
  StepResult exact = run(PruningScheme::kNone);
  StepResult hybrid = run(PruningScheme::kHybrid);
  ASSERT_EQ(exact.maps.size(), hybrid.maps.size());
  // Same display-set utility up to pruning noise.
  EXPECT_NEAR(RmPipeline::OperationUtility(exact.maps),
              RmPipeline::OperationUtility(hybrid.maps), 0.15);
  EXPECT_LT(hybrid.stats.record_updates, exact.stats.record_updates);
}

TEST(IntegrationTest, EndToEndStudySubdexBeatsDrillDownOnlyBaselines) {
  // A compact version of Table 4's comparison: with planted irregular
  // groups on both sides, SubDEx's recommendations (which can roll up)
  // find at least as many groups as the drill-down-only baselines.
  auto db = GenerateDataset(SmallYelp(), 787);
  IrregularPlantingOptions plant;
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db.get(), plant, 97);
  ASSERT_EQ(task.irregulars.size(), 2u);

  EngineConfig config = DefaultConfig();
  const size_t subjects = 6;
  const size_t steps = 7;
  TreatmentOutcome subdex =
      RunTreatmentGroup(*db, task, ExplorationMode::kFullyAutomated,
                        /*high_cs=*/true, /*high_domain=*/false, subjects,
                        steps, config, 13);
  SmartDrillDown sdd;
  TreatmentOutcome sdd_outcome =
      RunBaselineTreatment(*db, task, sdd, subjects, steps, config, 13);
  EXPECT_GE(subdex.mean_found + 0.35, sdd_outcome.mean_found);
}

}  // namespace
}  // namespace subdex
