// Fault-injection sweep: arms every registered fault point in turn and
// asserts that the engine survives each failure with its invariants
// intact — the strong exception guarantee on the history, Status
// propagation on the I/O layer, and full usability afterwards. Only built
// when cmake is configured with -DSUBDEX_FAULT_INJECTION=ON (ci/check.sh
// runs this under ASan).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include "engine/sde_engine.h"
#include "engine/session_log.h"
#include "server/server.h"
#include "server/session_journal.h"
#include "subjective/db_io.h"
#include "tests/test_support.h"
#include "util/fault_point.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

EngineConfig SmallConfig() {
  EngineConfig config;
  config.k = 3;
  config.o = 3;
  config.l = 3;
  config.min_group_size = 1;
  config.operations.max_candidates = 40;
  config.num_threads = 2;
  return config;
}

// Drives every fault point at least once so RegisteredPoints() is the
// complete catalog: an engine step with recommendations (thread pool,
// group cache), a save/load round trip (db_io), a logged step (session
// log), and a journaled session (append, fsync, rotation).
void DiscoverAllFaultPoints() {
  FaultInjector::Instance().Reset();
  auto db = MakeRandomDb(40, 15, 600, 2, 23);
  SdeEngine engine(db.get(), SmallConfig());
  SessionLog log;
  engine.AttachSessionLog(&log);
  engine.ExecuteStep(GroupSelection{}, true);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "subdex_fault_discovery")
          .string();
  ASSERT_TRUE(SaveDatabase(*db, dir).ok());
  auto loaded = LoadDatabase(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::filesystem::remove_all(dir);

  JournalConfig journal;
  journal.dir = (std::filesystem::temp_directory_path() /
                 "subdex_fault_discovery_journal")
                    .string();
  journal.fsync = JournalFsync::kEveryRecord;  // hits journal.fsync
  journal.segment_bytes = 1;  // second append must rotate
  std::filesystem::remove_all(journal.dir);
  ASSERT_TRUE(std::filesystem::create_directories(journal.dir));
  auto started = SessionJournal::Start(journal, "discovery");
  ASSERT_TRUE(started.ok()) << started.status().message();
  std::unique_ptr<SessionJournal> session_journal =
      std::move(started).value();
  ASSERT_TRUE(session_journal->Append(MakeResetRecord()).ok());
  ASSERT_TRUE(session_journal->Append(MakeResetRecord()).ok());
  ASSERT_TRUE(session_journal->EraseFiles().ok());
  std::filesystem::remove_all(journal.dir);
}

TEST(FaultInjectionTest, CatalogContainsEveryDeclaredPoint) {
  DiscoverAllFaultPoints();
  std::vector<std::string> points = FaultInjector::Instance().RegisteredPoints();
  for (const char* expected :
       {"thread_pool.chunk", "group_cache.load", "session_log.append",
        "db_io.parse_manifest", "db_io.load_ratings", "db_io.save",
        "journal.append", "journal.fsync", "journal.rotate"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), expected), points.end())
        << "fault point never hit during discovery: " << expected;
  }
}

// The sweep itself: for each discovered point, arm it with certainty and
// run the full workload. Whatever the failure mode (thrown from a pool
// worker, thrown from the cache leader, error Status from I/O), the
// engine's history must be exactly what the successful pre-fault steps
// left, and the engine must work normally once the point is disarmed.
TEST(FaultInjectionTest, SweepEveryPointPreservesEngineInvariants) {
  DiscoverAllFaultPoints();
  std::vector<std::string> points = FaultInjector::Instance().RegisteredPoints();
  ASSERT_FALSE(points.empty());

  for (const std::string& point : points) {
    SCOPED_TRACE("armed point: " + point);
    FaultInjector::Instance().Reset();

    auto db = MakeRandomDb(40, 15, 600, 2, 29);
    SdeEngine engine(db.get(), SmallConfig());

    // One clean step first, so the armed run has committed history to
    // corrupt if the exception guarantee were broken.
    StepResult clean = engine.ExecuteStep(GroupSelection{}, true);
    ASSERT_FALSE(clean.maps.empty());
    const size_t seen_before = engine.seen().total();
    const auto explored_before = engine.explored_selections();

    FaultInjector::Instance().Arm(point, {});

    // Engine-path points fail the step with an exception; I/O-path points
    // don't sit on the step path at all. Either way the history must be
    // byte-identical afterwards.
    GroupSelection other;
    other.reviewer_pred = Predicate({{0, 0}});
    bool threw = false;
    try {
      engine.ExecuteStep(other, true);
    } catch (const FaultInjectedError&) {
      threw = true;
    }
    if (threw) {
      EXPECT_EQ(engine.seen().total(), seen_before);
      EXPECT_EQ(engine.explored_selections().size(), explored_before.size());
    }

    // I/O-layer points surface as non-OK Status, never as exceptions.
    const std::string dir =
        (std::filesystem::temp_directory_path() / ("subdex_sweep_" + point))
            .string();
    Status save = SaveDatabase(*db, dir);
    if (save.ok()) {
      auto loaded = LoadDatabase(dir);
      if (!loaded.ok()) {
        EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
      }
    } else {
      EXPECT_EQ(save.code(), StatusCode::kIoError);
    }
    std::filesystem::remove_all(dir);

    // Disarmed, the engine (same instance that just survived the fault)
    // completes the previously failing step and commits it. Points off the
    // step path (e.g. db_io) let the armed step commit too, so measure
    // from the current history, not from before the armed step.
    FaultInjector::Instance().Disarm(point);
    const size_t seen_mid = engine.seen().total();
    StepResult after = engine.ExecuteStep(other, true);
    EXPECT_FALSE(after.maps.empty());
    EXPECT_EQ(engine.seen().total(), seen_mid + after.maps.size());
  }
  FaultInjector::Instance().Reset();
}

TEST(FaultInjectionTest, GroupCacheWaitersObserveLeaderFailureWithoutHang) {
  FaultInjector::Instance().Reset();
  auto db = MakeRandomDb(40, 15, 600, 2, 31);
  RatingGroupCache cache(db.get(), 8);

  // Fire exactly once: the single-flight leader fails, every coalesced
  // waiter rethrows, and the next Get for the same key succeeds.
  FaultInjector::Instance().Arm("group_cache.load", {});
  EXPECT_THROW(cache.Get(GroupSelection{}), FaultInjectedError);
  FaultInjector::Instance().Disarm("group_cache.load");
  RatingGroup group = cache.Get(GroupSelection{});
  EXPECT_EQ(group.size(), db->num_records());
  FaultInjector::Instance().Reset();
}

TEST(FaultInjectionTest, SessionLogFailuresAreCountedNotFatal) {
  FaultInjector::Instance().Reset();
  auto db = MakeTinyRestaurantDb();
  SdeEngine engine(db.get(), SmallConfig());
  SessionLog log;
  engine.AttachSessionLog(&log);

  FaultInjector::Instance().Arm("session_log.append", {});
  StepResult step = engine.ExecuteStep(GroupSelection{}, false);
  // The step itself is unharmed; the lost entry is accounted.
  EXPECT_FALSE(step.maps.empty());
  EXPECT_EQ(engine.dropped_log_entries(), 1u);
  // Append still records in memory before the (injected) sink failure.
  EXPECT_EQ(log.size(), 1u);

  FaultInjector::Instance().Disarm("session_log.append");
  engine.ExecuteStep(GroupSelection{}, false);
  EXPECT_EQ(engine.dropped_log_entries(), 1u);
  EXPECT_EQ(log.size(), 2u);
  FaultInjector::Instance().Reset();
}

TEST(FaultInjectionTest, InjectedDelayForcesDeadlineDegradation) {
  FaultInjector::Instance().Reset();
  auto db = MakeRandomDb(40, 15, 600, 2, 37);
  SdeEngine engine(db.get(), SmallConfig());

  // Delay-only arm: the pool chunk sleeps past the deadline instead of
  // failing, so the step must degrade deterministically, not throw.
  FaultInjector::ArmSpec delay;
  delay.fail = false;
  delay.delay_ms = 30.0;
  FaultInjector::Instance().Arm("thread_pool.chunk", delay);

  StepOptions options;
  options.deadline = Deadline::FromNowMs(10.0);
  StepResult result = engine.ExecuteStep(GroupSelection{}, options);
  EXPECT_TRUE(result.degraded);
  EXPECT_NE(result.cut_phase, StepPhase::kNone);
  EXPECT_FALSE(result.cancelled);
  // Displayed best-effort maps are committed, as for any degraded step.
  EXPECT_EQ(engine.seen().total(), result.maps.size());
  FaultInjector::Instance().Reset();
}

// Each journal fault point, fired through the server's routing core,
// must degrade exactly one session to read-only (503 + Retry-After on
// mutations) while reads, other routes, and DELETE keep working — and
// must never take the process down.
TEST(FaultInjectionTest, JournalFaultsLatchReadOnlyAndNeverKillTheServer) {
  for (const char* point :
       {"journal.append", "journal.fsync", "journal.rotate"}) {
    SCOPED_TRACE(std::string("armed point: ") + point);
    FaultInjector::Instance().Reset();
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         (std::string("subdex_journal_fault_") + point))
            .string();
    std::filesystem::remove_all(dir);

    SubdexServer::Options options;
    options.engine.min_group_size = 1;
    options.journal.dir = dir;
    // every_record puts fsync on the step path; segment_bytes=1 puts
    // rotation there too (every post-create append overflows).
    options.journal.fsync = JournalFsync::kEveryRecord;
    options.journal.segment_bytes = 1;
    SubdexServer server(options);
    ASSERT_TRUE(
        server.RegisterDataset("tiny", MakeTinyRestaurantDb()).ok());
    ASSERT_TRUE(server.Start().ok());
    CancellationToken token;
    auto call = [&](const std::string& method, const std::string& target) {
      HttpRequest request;
      request.method = method;
      request.target = target;
      request.body = "{}";
      return server.Handle(request, token);
    };

    HttpResponse created = call("POST", "/sessions");
    ASSERT_EQ(created.status, 201) << created.body;
    auto body = JsonValue::Parse(created.body);
    ASSERT_TRUE(body.ok());
    const std::string id = body.value().Find("session_id")->str();

    FaultInjector::Instance().Arm(point, {});
    HttpResponse failed = call("POST", "/sessions/" + id + "/step");
    EXPECT_EQ(failed.status, 503) << failed.body;
    bool has_retry_after = false;
    for (const auto& [name, value] : failed.extra_headers) {
      if (name == "Retry-After" && !value.empty()) has_retry_after = true;
    }
    EXPECT_TRUE(has_retry_after);
    EXPECT_GE(FaultInjector::Instance().FireCount(point), 1u);

    // Disarming does not unlatch: the journal may hold a torn record, so
    // the session stays read-only while everything else keeps serving.
    FaultInjector::Instance().Disarm(point);
    EXPECT_EQ(call("POST", "/sessions/" + id + "/step").status, 503);
    EXPECT_EQ(call("GET", "/sessions/" + id).status, 200);
    EXPECT_EQ(call("GET", "/healthz").status, 200);
    HttpResponse fresh = call("POST", "/sessions");
    EXPECT_EQ(fresh.status, 201) << fresh.body;
    EXPECT_EQ(call("DELETE", "/sessions/" + id).status, 200);

    server.Stop();
    std::filesystem::remove_all(dir);
  }
  FaultInjector::Instance().Reset();
}

TEST(FaultInjectionTest, DeterministicScheduleHonorsAfterHitsAndSeed) {
  FaultInjector::Instance().Reset();
  auto db = MakeTinyRestaurantDb();

  FaultInjector::ArmSpec spec;
  spec.after_hits = 2;
  FaultInjector::Instance().Arm("db_io.save", spec);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "subdex_sched").string();
  EXPECT_TRUE(SaveDatabase(*db, dir).ok());   // hit 1: skipped
  EXPECT_TRUE(SaveDatabase(*db, dir).ok());   // hit 2: skipped
  EXPECT_FALSE(SaveDatabase(*db, dir).ok());  // hit 3: fires
  EXPECT_EQ(FaultInjector::Instance().FireCount("db_io.save"), 1u);
  EXPECT_EQ(FaultInjector::Instance().HitCount("db_io.save"), 3u);

  // Same seed + probability => same fire pattern on a fresh arm.
  auto pattern = [&](uint64_t seed) {
    FaultInjector::ArmSpec p;
    p.probability = 0.5;
    p.seed = seed;
    FaultInjector::Instance().Arm("db_io.save", p);
    std::string bits;
    for (int i = 0; i < 16; ++i) {
      bits += SaveDatabase(*db, dir).ok() ? '0' : '1';
    }
    return bits;
  };
  std::string a = pattern(99);
  std::string b = pattern(99);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, std::string(16, '0'));
  EXPECT_NE(a, std::string(16, '1'));
  std::filesystem::remove_all(dir);
  FaultInjector::Instance().Reset();
}

}  // namespace
}  // namespace subdex
