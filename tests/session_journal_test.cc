// Crash-safe session tests (DESIGN.md §13): the journal record format,
// and — through the server's in-process routing core — the full durability
// loop: journal on mutation, replay on restart, digest verification,
// torn-tail truncation, divergence flagging (410), tombstoned deletes, and
// the read-only (503) degradation when journal writes start failing.
//
// ci/crash_smoke.sh covers the same protocol against a real subdexd
// process under randomized SIGKILL; these tests pin the semantics
// deterministically, in-process, so sanitizer runs see every code path.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "server/json.h"
#include "server/server.h"
#include "server/session_journal.h"
#include "storage/framed_log.h"
#include "tests/test_support.h"
#include "util/check.h"

namespace subdex {
namespace {

namespace fs = std::filesystem;

HttpRequest MakeRequest(const std::string& method, const std::string& target,
                        const std::string& body = "") {
  HttpRequest request;
  request.method = method;
  request.target = target;
  request.body = body;
  return request;
}

// ---------------------------------------------------------------------------
// Record encoding

TEST(JournalRecordTest, DigestHexRoundTrip) {
  const uint64_t cases[] = {0, 1, 0xdeadbeefcafef00dULL, ~0ULL};
  for (uint64_t digest : cases) {
    std::string hex = DigestToHex(digest);
    EXPECT_EQ(hex.size(), 16u);
    uint64_t back = 0;
    ASSERT_TRUE(HexToDigest(hex, &back)) << hex;
    EXPECT_EQ(back, digest);
  }
  uint64_t out = 0;
  EXPECT_FALSE(HexToDigest("", &out));
  EXPECT_FALSE(HexToDigest("123", &out));
  EXPECT_FALSE(HexToDigest("00000000000000zz", &out));
  EXPECT_FALSE(HexToDigest("00000000000000000", &out));  // 17 digits
}

TEST(JournalRecordTest, FsyncPolicyParses) {
  JournalFsync policy = JournalFsync::kBatch;
  ASSERT_TRUE(ParseJournalFsync("never", &policy));
  EXPECT_EQ(policy, JournalFsync::kNever);
  ASSERT_TRUE(ParseJournalFsync("every_record", &policy));
  EXPECT_EQ(policy, JournalFsync::kEveryRecord);
  ASSERT_TRUE(ParseJournalFsync("batch", &policy));
  EXPECT_EQ(policy, JournalFsync::kBatch);
  EXPECT_FALSE(ParseJournalFsync("sometimes", &policy));
  EXPECT_STREQ(JournalFsyncName(JournalFsync::kEveryRecord), "every_record");
}

// ---------------------------------------------------------------------------
// End-to-end durability through the routing core

class JournalRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "subdex_journal_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           "_" + std::to_string(::getpid());
    fs::remove_all(dir_);
    StartServer();
  }

  void TearDown() override {
    server_.reset();
    fs::remove_all(dir_);
  }

  SubdexServer::Options MakeOptions() {
    SubdexServer::Options options;
    // The tiny db has 12 ratings; without this no candidate operation
    // survives the default min_group_size and recommendations are empty.
    options.engine.min_group_size = 1;
    options.journal.dir = dir_;
    options.journal.fsync = JournalFsync::kNever;  // tests kill no process
    options.journal.segment_bytes = segment_bytes_;
    return options;
  }

  /// (Re)starts the server against the same journal dir — the in-process
  /// stand-in for a crash+restart (the old instance simply stops being
  /// asked; its sessions were only ever as durable as their journals).
  void StartServer() {
    server_ = std::make_unique<SubdexServer>(MakeOptions());
    SUBDEX_CHECK_OK(server_->RegisterDataset(
        "tiny", testing_support::MakeTinyRestaurantDb()));
    // Routing works without Start(); recovery is what Start() adds. Keep
    // sockets out of these tests.
    SUBDEX_CHECK_OK(server_->Start());
  }

  void Restart() {
    server_.reset();
    StartServer();
  }

  HttpResponse Call(const std::string& method, const std::string& target,
                    const std::string& body = "") {
    return server_->Handle(MakeRequest(method, target, body), token_);
  }

  JsonValue Body(const HttpResponse& response) {
    auto parsed = JsonValue::Parse(response.body);
    SUBDEX_CHECK_OK(parsed.status());
    return parsed.value();
  }

  std::string CreateSession(const std::string& body = "{}") {
    HttpResponse response = Call("POST", "/sessions", body);
    SUBDEX_CHECK_MSG(response.status == 201, "create failed");
    return Body(response).Find("session_id")->str();
  }

  /// Runs one step and returns the digest the client was acked with.
  std::string Step(const std::string& id, const std::string& body = "{}") {
    HttpResponse response = Call("POST", "/sessions/" + id + "/step", body);
    SUBDEX_CHECK_MSG(response.status == 200, "step failed");
    return Body(response).Find("digest")->str();
  }

  std::vector<std::string> ServedDigests(const std::string& id) {
    HttpResponse response = Call("GET", "/sessions/" + id);
    SUBDEX_CHECK_MSG(response.status == 200, "GET session failed");
    std::vector<std::string> out;
    const JsonValue body = Body(response);
    for (const JsonValue& digest : body.Find("digests")->items()) {
      out.push_back(digest.str());
    }
    return out;
  }

  /// Session journal segment paths, ascending sequence.
  std::vector<std::string> Segments(const std::string& id) {
    std::vector<std::string> out;
    JournalConfig config = MakeOptions().journal;
    for (uint64_t seq = 1;; ++seq) {
      std::string path = SessionJournal::SegmentPath(config, id, seq);
      if (!fs::exists(path)) break;
      out.push_back(path);
    }
    return out;
  }

  std::string dir_;
  size_t segment_bytes_ = 4u << 20;
  std::unique_ptr<SubdexServer> server_;
  CancellationToken token_;
};

TEST_F(JournalRecoveryTest, RestartRebuildsSessionsWithMatchingDigests) {
  const std::string a = CreateSession("{\"ttl_ms\":60000}");
  const std::string b = CreateSession("{\"config\":{\"k\":2}}");
  std::vector<std::string> acked_a, acked_b;
  acked_a.push_back(Step(a, "{\"reviewers\":\"gender = F\"}"));
  acked_a.push_back(Step(a, "{\"recommendation\":0}"));
  acked_b.push_back(Step(b, "{\"items\":\"city = nyc\"}"));
  // A reset wipes the digest chain — replay must honor it.
  ASSERT_EQ(Call("POST", "/sessions/" + b + "/reset").status, 200);
  acked_b.clear();
  acked_b.push_back(Step(b));

  Restart();

  EXPECT_EQ(server_->recovery().sessions_recovered, 2u);
  EXPECT_EQ(server_->recovery().sessions_divergent, 0u);
  EXPECT_EQ(server_->recovery().torn_tails, 0u);
  EXPECT_EQ(ServedDigests(a), acked_a);
  EXPECT_EQ(ServedDigests(b), acked_b);

  HttpResponse meta = Call("GET", "/sessions/" + a);
  ASSERT_EQ(meta.status, 200);
  EXPECT_TRUE(Body(meta).Find("recovered")->bool_value());
  EXPECT_FALSE(Body(meta).Find("read_only")->bool_value());
  EXPECT_EQ(Body(meta).Find("ttl_ms")->number(), 60000.0);

  // The rebuilt session keeps exploring: recommendation indexes resolve
  // against the replayed last step, and new steps journal as before.
  acked_a.push_back(Step(a, "{\"recommendation\":0}"));
  Restart();
  EXPECT_EQ(ServedDigests(a), acked_a);
}

TEST_F(JournalRecoveryTest, RecoveredIdsNeverCollideWithNewSessions) {
  const std::string a = CreateSession();
  Restart();
  const std::string b = CreateSession();
  EXPECT_NE(a, b);
  EXPECT_EQ(server_->sessions().ActiveCount(), 2u);
}

TEST_F(JournalRecoveryTest, TornTailIsTruncatedAndTheSessionStillServes) {
  const std::string id = CreateSession();
  std::vector<std::string> acked;
  acked.push_back(Step(id));
  acked.push_back(Step(id, "{\"reviewers\":\"gender = M\"}"));

  server_.reset();
  // Crash mid-append: garbage after the last whole record.
  std::vector<std::string> segments = Segments(id);
  ASSERT_EQ(segments.size(), 1u);
  {
    std::ofstream out(segments[0], std::ios::binary | std::ios::app);
    out.write("\x21\x00\x00\x00\xde\xad\xbe", 7);
    ASSERT_TRUE(out.good());
  }
  StartServer();

  EXPECT_EQ(server_->recovery().sessions_recovered, 1u);
  EXPECT_EQ(server_->recovery().sessions_divergent, 0u);
  EXPECT_EQ(server_->recovery().torn_tails, 1u);
  EXPECT_EQ(ServedDigests(id), acked);

  // Resume truncated the tear, so appending keeps the segment readable.
  acked.push_back(Step(id));
  Restart();
  EXPECT_EQ(server_->recovery().torn_tails, 0u);
  EXPECT_EQ(ServedDigests(id), acked);
}

TEST_F(JournalRecoveryTest, TamperedDigestMakesTheSessionGone) {
  const std::string id = CreateSession();
  // Discard justified: this step's digest is read back from disk below.
  (void)Step(id);
  server_.reset();

  // Rewrite the segment with the step digest flipped: replay re-executes
  // the step, computes the honest digest, and must refuse to serve.
  std::vector<std::string> segments = Segments(id);
  ASSERT_EQ(segments.size(), 1u);
  FramedLogContents contents = ReadFramedLog(segments[0]);
  ASSERT_TRUE(contents.status.ok());
  ASSERT_EQ(contents.records.size(), 2u);  // create + step
  std::string& step_record = contents.records[1];
  size_t digest_pos = step_record.find("\"digest\":\"");
  ASSERT_NE(digest_pos, std::string::npos);
  char& first_digit = step_record[digest_pos + 10];
  first_digit = first_digit == '0' ? '1' : '0';
  fs::remove(segments[0]);
  {
    Result<FramedLogWriter> writer = FramedLogWriter::Create(segments[0]);
    ASSERT_TRUE(writer.ok());
    FramedLogWriter log = std::move(writer).value();
    for (const std::string& record : contents.records) {
      ASSERT_TRUE(log.Append(record).ok());
    }
  }
  StartServer();

  EXPECT_EQ(server_->recovery().sessions_recovered, 0u);
  EXPECT_EQ(server_->recovery().sessions_divergent, 1u);
  // Divergent beats wrong: every route on the id answers 410 Gone.
  EXPECT_EQ(Call("GET", "/sessions/" + id).status, 410);
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step").status, 410);
  EXPECT_EQ(Call("DELETE", "/sessions/" + id).status, 410);
  EXPECT_EQ(server_->sessions().ActiveCount(), 0u);
}

TEST_F(JournalRecoveryTest, MidFileCorruptionMakesTheSessionGone) {
  const std::string id = CreateSession();
  // Discard justified: the digest is irrelevant once the file is damaged.
  (void)Step(id);
  (void)Step(id);
  server_.reset();

  std::vector<std::string> segments = Segments(id);
  ASSERT_EQ(segments.size(), 1u);
  // Flip one byte early in the file (inside the create record): a bad
  // record with valid data after it is corruption, not a torn tail.
  {
    std::fstream file(segments[0],
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(20);
    file.put('\x7f');
    ASSERT_TRUE(file.good());
  }
  StartServer();

  EXPECT_EQ(server_->recovery().sessions_divergent, 1u);
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step").status, 410);
}

TEST_F(JournalRecoveryTest, DeleteLeavesNothingToRecover) {
  const std::string id = CreateSession();
  // Discard justified: the session is deleted below; its digest is moot.
  (void)Step(id);
  ASSERT_FALSE(Segments(id).empty());
  ASSERT_EQ(Call("DELETE", "/sessions/" + id).status, 200);
  EXPECT_TRUE(Segments(id).empty());
  EXPECT_FALSE(
      fs::exists(SessionJournal::MirrorPath(MakeOptions().journal, id)));

  Restart();
  EXPECT_EQ(server_->recovery().sessions_recovered, 0u);
  EXPECT_EQ(Call("GET", "/sessions/" + id).status, 404);
}

TEST_F(JournalRecoveryTest, CrashedDeleteIsFinishedOnRecovery) {
  const std::string id = CreateSession();
  // Discard justified: the session is tombstoned below; its digest is moot.
  (void)Step(id);
  server_.reset();

  // A crash after the tombstone landed but before the unlink: the files
  // are still on disk, with a delete record at the end.
  std::vector<std::string> segments = Segments(id);
  ASSERT_EQ(segments.size(), 1u);
  FramedLogContents contents = ReadFramedLog(segments[0]);
  ASSERT_TRUE(contents.status.ok());
  {
    Result<FramedLogWriter> writer =
        FramedLogWriter::OpenForAppend(segments[0], contents.valid_bytes);
    ASSERT_TRUE(writer.ok());
    FramedLogWriter log = std::move(writer).value();
    ASSERT_TRUE(log.Append(MakeDeleteRecord().Dump()).ok());
  }
  StartServer();

  EXPECT_EQ(server_->recovery().sessions_recovered, 0u);
  EXPECT_EQ(server_->recovery().sessions_divergent, 0u);
  EXPECT_TRUE(Segments(id).empty()) << "recovery must finish the erase";
  EXPECT_EQ(Call("GET", "/sessions/" + id).status, 404);
}

TEST_F(JournalRecoveryTest, TtlReapErasesTheJournal) {
  const std::string id = CreateSession("{\"ttl_ms\":1}");
  ASSERT_FALSE(Segments(id).empty());
  // Let the 1 ms TTL lapse, then sweep synchronously (no reaper thread
  // races in tests).
  usleep(10 * 1000);
  // Discard justified: the background reaper may have swept first; the
  // on-disk outcome below is the assertion either way.
  (void)server_->sessions().ReapExpired();
  EXPECT_TRUE(Segments(id).empty());
  Restart();
  EXPECT_EQ(server_->recovery().sessions_recovered, 0u);
}

TEST_F(JournalRecoveryTest, RotationSplitsTheJournalAcrossSegments) {
  segment_bytes_ = 256;  // every step record overflows a 256-byte segment
  Restart();
  const std::string id = CreateSession();
  std::vector<std::string> acked;
  for (int i = 0; i < 4; ++i) acked.push_back(Step(id));
  EXPECT_GE(Segments(id).size(), 2u) << "no rotation happened";

  Restart();
  EXPECT_EQ(server_->recovery().sessions_recovered, 1u);
  EXPECT_EQ(server_->recovery().sessions_divergent, 0u);
  EXPECT_EQ(ServedDigests(id), acked);

  // A missing middle segment is corruption (acked records vanished), not
  // something to paper over.
  server_.reset();
  std::vector<std::string> segments = Segments(id);
  ASSERT_GE(segments.size(), 3u);
  fs::remove(segments[1]);
  StartServer();
  EXPECT_EQ(server_->recovery().sessions_divergent, 1u);
  EXPECT_EQ(Call("GET", "/sessions/" + id).status, 410);
}

TEST_F(JournalRecoveryTest, JournalFailureTurnsTheSessionReadOnly) {
  segment_bytes_ = 1;  // force a rotation attempt on every post-create append
  Restart();
  const std::string id = CreateSession();
  // Vanish the journal dir: the next append must rotate into a directory
  // that no longer exists, which fails even for root (no EPERM games).
  fs::remove_all(dir_);

  HttpResponse failed = Call("POST", "/sessions/" + id + "/step");
  EXPECT_EQ(failed.status, 503) << failed.body;
  bool has_retry_after = false;
  for (const auto& [name, value] : failed.extra_headers) {
    if (name == "Retry-After" && !value.empty()) has_retry_after = true;
  }
  EXPECT_TRUE(has_retry_after);

  // The failure latches: mutations stay 503, reads keep serving.
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/step").status, 503);
  EXPECT_EQ(Call("POST", "/sessions/" + id + "/reset").status, 503);
  HttpResponse meta = Call("GET", "/sessions/" + id);
  ASSERT_EQ(meta.status, 200);
  EXPECT_TRUE(Body(meta).Find("read_only")->bool_value());
  // DELETE still works — it only removes state.
  EXPECT_EQ(Call("DELETE", "/sessions/" + id).status, 200);
}

TEST_F(JournalRecoveryTest, UnjournaledStepIsNeverAcked) {
  segment_bytes_ = 1;
  Restart();
  const std::string id = CreateSession();
  std::vector<std::string> acked;  // nothing gets acked below
  fs::remove_all(dir_);
  ASSERT_EQ(Call("POST", "/sessions/" + id + "/step").status, 503);
  server_.reset();

  // The dir is gone, so the restarted server finds no journal at all: the
  // 503'd step must not resurrect (it was never acknowledged), and the
  // session itself is gone (its create record died with the dir — the
  // client holding a 201 made that trade when the disk vanished).
  StartServer();
  EXPECT_EQ(server_->recovery().sessions_recovered, 0u);
  EXPECT_EQ(Call("GET", "/sessions/" + id).status, 404);
  EXPECT_TRUE(acked.empty());
}

TEST_F(JournalRecoveryTest, EmptyJournalShellIsDroppedNotDivergent) {
  const std::string id = CreateSession();
  server_.reset();
  // Simulate a crash after segment creation but before the create record
  // landed: truncate the segment to just its magic.
  std::vector<std::string> segments = Segments(id);
  ASSERT_EQ(segments.size(), 1u);
  fs::resize_file(segments[0], 8);
  StartServer();
  EXPECT_EQ(server_->recovery().sessions_recovered, 0u);
  EXPECT_EQ(server_->recovery().sessions_divergent, 0u);
  EXPECT_TRUE(Segments(id).empty());
}

}  // namespace
}  // namespace subdex
