#include "util/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/group_cache.h"
#include "engine/sde_engine.h"
#include "engine/step_timings.h"
#include "engine/step_trace.h"
#include "tests/test_support.h"

namespace subdex {
namespace {

using testing_support::MakeTinyRestaurantDb;

EngineConfig TinyConfig() {
  EngineConfig config;
  config.k = 2;
  config.o = 2;
  config.l = 2;
  config.min_group_size = 1;
  config.operations.max_candidates = 20;
  config.num_threads = 1;
  return config;
}

// ------------------------------------------------------------ Counter ---

#if SUBDEX_METRICS_ENABLED

TEST(CounterTest, IncrementAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(5);
  EXPECT_EQ(c.Value(), 6u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

// -------------------------------------------------------------- Gauge ---

TEST(GaugeTest, SetAddAndValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(42);
  EXPECT_EQ(g.Value(), 42);
  g.Add(-50);
  EXPECT_EQ(g.Value(), -8);
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

// ---------------------------------------------------------- Histogram ---

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.Observe(1.0);  // exactly on a bound: belongs to that bucket (le=1)
  h.Observe(1.5);  // le=2
  h.Observe(4.0);  // le=4
  h.Observe(5.0);  // +Inf overflow
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.TotalCount(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 11.5);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
}

#else  // !SUBDEX_METRICS_ENABLED

// A SUBDEX_METRICS=OFF build compiles every mutation to a no-op; the
// accessors stay linkable and report zeros.
TEST(DisabledMetricsTest, PrimitivesAreNoOps) {
  Counter c;
  c.Increment(100);
  EXPECT_EQ(c.Value(), 0u);
  Gauge g;
  g.Set(5);
  g.Add(3);
  EXPECT_EQ(g.Value(), 0);
  Histogram h(std::vector<double>{1.0, 2.0});
  h.Observe(1.5);
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.0);
  EXPECT_EQ(h.BucketCounts(), std::vector<uint64_t>(3, 0));
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0}));
}

#endif  // SUBDEX_METRICS_ENABLED

TEST(HistogramTest, DefaultBucketLayoutsAreStrictlyIncreasing) {
  for (const std::vector<double>& bounds :
       {MetricsRegistry::LatencyBucketsMs(), MetricsRegistry::CountBuckets(),
        MetricsRegistry::UnitBuckets()}) {
    ASSERT_FALSE(bounds.empty());
    for (size_t i = 1; i < bounds.size(); ++i) {
      EXPECT_LT(bounds[i - 1], bounds[i]);
    }
  }
}

// ----------------------------------------- Quantile interpolation -------
// HistogramQuantile is a free function over (bounds, buckets), compiled in
// every build (metrics ON or OFF): the loadgen latency recorder and the
// /metrics consumers share it, so its semantics are pinned here exactly.

TEST(HistogramQuantileTest, EmptyDistributionIsNaN) {
  EXPECT_TRUE(std::isnan(HistogramQuantile({1.0, 2.0}, {0, 0, 0}, 0.5)));
  EXPECT_TRUE(std::isnan(HistogramQuantile({}, {}, 0.5)));
  EXPECT_TRUE(std::isnan(HistogramQuantile({1.0}, {}, 0.5)));
}

TEST(HistogramQuantileTest, FirstBucketInterpolatesFromZero) {
  // Prometheus semantics: when bounds[0] > 0, the first bucket's lower
  // edge is 0, so a distribution entirely in bucket le=1 interpolates
  // inside [0, 1].
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {2, 0, 0, 0}, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {4, 0, 0, 0}, 0.25), 0.25);
}

TEST(HistogramQuantileTest, InterpolatesLinearlyInsideABucket) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // One observation <= 1, one in (1, 2]: rank 1.5 of 2 lands halfway into
  // the second bucket.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {1, 1, 0, 0}, 0.75), 1.5);
  // Bucket boundaries: the quantile exactly exhausting a bucket returns
  // its upper bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {1, 1, 0, 0}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {1, 1, 0, 0}, 1.0), 2.0);
}

TEST(HistogramQuantileTest, SkipsEmptyBucketsAndStaysMonotone) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0, 8.0};
  const std::vector<uint64_t> buckets = {3, 0, 1, 0, 0};
  double previous = 0.0;
  for (double q : {0.0, 0.1, 0.5, 0.74, 0.76, 0.9, 1.0}) {
    double value = HistogramQuantile(bounds, buckets, q);
    EXPECT_GE(value, previous) << "q=" << q;
    previous = value;
  }
  // The last observation sits in (2, 4]; anything above rank 3 of 4
  // interpolates there, never in the empty (1, 2] bucket.
  EXPECT_GT(HistogramQuantile(bounds, buckets, 0.9), 2.0);
}

TEST(HistogramQuantileTest, OverflowBucketReportsLastFiniteBound) {
  const std::vector<double> bounds = {1.0, 2.0, 4.0};
  // Everything beyond the ladder: the histogram cannot resolve the tail,
  // so the honest answer is the largest finite bound (Prometheus's
  // histogram_quantile does the same).
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {0, 0, 0, 7}, 0.99), 4.0);
  // Mixed: the overflow tail pulls high quantiles to the last bound.
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, {1, 0, 0, 1}, 1.0), 4.0);
}

TEST(HistogramQuantileTest, QuantileIsClampedToUnitInterval) {
  const std::vector<double> bounds = {1.0, 2.0};
  const std::vector<uint64_t> buckets = {1, 1, 0};
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, buckets, -1.0),
                   HistogramQuantile(bounds, buckets, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(bounds, buckets, 2.0),
                   HistogramQuantile(bounds, buckets, 1.0));
}

#if SUBDEX_METRICS_ENABLED

TEST(HistogramQuantileTest, HistogramAndSnapshotAgreeWithFreeFunction) {
  Histogram h(std::vector<double>{1.0, 2.0, 4.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(3.0);
  h.Observe(9.0);
  const double direct = h.ValueAtQuantile(0.5);
  EXPECT_DOUBLE_EQ(direct,
                   HistogramQuantile(h.bounds(), h.BucketCounts(), 0.5));
  MetricsSnapshot::HistogramSample sample;
  sample.bounds = h.bounds();
  sample.buckets = h.BucketCounts();
  EXPECT_DOUBLE_EQ(sample.ValueAtQuantile(0.5), direct);
}

#endif  // SUBDEX_METRICS_ENABLED

// ----------------------------------------------------------- Registry ---

TEST(MetricsRegistryTest, GetReturnsStableReferences) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("test_counter", "help");
  Counter& b = reg.GetCounter("test_counter");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.GetGauge("test_gauge");
  Gauge& g2 = reg.GetGauge("test_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.GetHistogram("test_hist", {1.0, 2.0});
  // Re-registration with different bounds returns the same object; the
  // original bounds win.
  Histogram& h2 = reg.GetHistogram("test_hist", {100.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(MetricsRegistryTest, ResetForTestZeroesWithoutUnregistering) {
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("reset_me");
  c.Increment(9);
  reg.ResetForTest();
  EXPECT_EQ(c.Value(), 0u);
  // The cached reference is still the registered metric.
  EXPECT_EQ(&c, &reg.GetCounter("reset_me"));
  EXPECT_EQ(reg.Snapshot().counters.size(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.GetCounter("zebra");
  reg.GetCounter("apple");
  reg.GetCounter("mango");
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].name, "apple");
  EXPECT_EQ(snap.counters[1].name, "mango");
  EXPECT_EQ(snap.counters[2].name, "zebra");
}

// ---------------------------------------------------------- Exporters ---

TEST(ExporterTest, PrometheusTextEscapesHelpAndRendersCumulativeBuckets) {
  MetricsSnapshot snap;
  snap.counters.push_back({"c_total", "line1\nline2 with \\backslash", 7});
  snap.gauges.push_back({"g", "", -3});
  MetricsSnapshot::HistogramSample h;
  h.name = "h_ms";
  h.help = "latency";
  h.bounds = {0.25, 1.0};
  h.buckets = {2, 1, 3};  // non-cumulative; last entry is +Inf overflow
  h.count = 6;
  h.sum = 4.5;
  snap.histograms.push_back(h);

  std::string text = snap.ToPrometheusText();
  EXPECT_NE(
      text.find("# HELP c_total line1\\nline2 with \\\\backslash\n"),
      std::string::npos);
  EXPECT_NE(text.find("# TYPE c_total counter\nc_total 7\n"),
            std::string::npos);
  // No help line is emitted for an empty help string.
  EXPECT_EQ(text.find("# HELP g"), std::string::npos);
  EXPECT_NE(text.find("# TYPE g gauge\ng -3\n"), std::string::npos);
  // Exported buckets are cumulative; the +Inf bucket equals the count.
  EXPECT_NE(text.find("h_ms_bucket{le=\"0.25\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_bucket{le=\"1\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_bucket{le=\"+Inf\"} 6\n"), std::string::npos);
  // Sums render with fixed 6-decimal precision.
  EXPECT_NE(text.find("h_ms_sum 4.500000\n"), std::string::npos);
  EXPECT_NE(text.find("h_ms_count 6\n"), std::string::npos);
}

TEST(ExporterTest, JsonEscapesNamesAndKeepsRawBuckets) {
  MetricsSnapshot snap;
  snap.counters.push_back({"quote\"back\\slash\nnewline\ttab", "", 1});
  MetricsSnapshot::HistogramSample h;
  h.name = "h";
  h.bounds = {0.5};
  h.buckets = {4, 2};
  h.count = 6;
  h.sum = 2.25;
  snap.histograms.push_back(h);

  std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"quote\\\"back\\\\slash\\nnewline\\ttab\":1"),
            std::string::npos);
  // JSON keeps the per-bucket (non-cumulative) counts.
  EXPECT_NE(json.find("\"h\":{\"bounds\":[0.5],\"buckets\":[4,2],"
                      "\"count\":6,\"sum\":2.250000}"),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(ExporterTest, JsonEscapesControlCharacters) {
  MetricsSnapshot snap;
  snap.counters.push_back({std::string("ctl\x01"), "", 0});
  EXPECT_NE(snap.ToJson().find("ctl\\u0001"), std::string::npos);
}

// Both exporters render the same registry state: every value written
// through the registry must be readable back from both text forms.
TEST(ExporterTest, RoundTripThroughBothExporters) {
  MetricsRegistry reg;
  reg.GetCounter("rt_counter").Increment(7);
  reg.GetGauge("rt_gauge").Set(-12);
  Histogram& h = reg.GetHistogram("rt_hist", {1.0, 10.0});
  h.Observe(0.5);
  h.Observe(0.5);
  h.Observe(5.0);
  h.Observe(100.0);

  MetricsSnapshot snap = reg.Snapshot();
  std::string prom = snap.ToPrometheusText();
  std::string json = snap.ToJson();
#if SUBDEX_METRICS_ENABLED
  EXPECT_NE(prom.find("rt_counter 7\n"), std::string::npos);
  EXPECT_NE(prom.find("rt_gauge -12\n"), std::string::npos);
  EXPECT_NE(prom.find("rt_hist_bucket{le=\"1\"} 2\n"), std::string::npos);
  EXPECT_NE(prom.find("rt_hist_bucket{le=\"10\"} 3\n"), std::string::npos);
  EXPECT_NE(prom.find("rt_hist_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(prom.find("rt_hist_count 4\n"), std::string::npos);
  EXPECT_NE(json.find("\"rt_counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"rt_gauge\":-12"), std::string::npos);
  EXPECT_NE(json.find("\"rt_hist\":{\"bounds\":[1,10],"
                      "\"buckets\":[2,1,1],\"count\":4,\"sum\":106.000000}"),
            std::string::npos);
#else
  // OFF builds keep the registry and exporter structure but report zeros.
  EXPECT_NE(prom.find("rt_counter 0\n"), std::string::npos);
  EXPECT_NE(prom.find("rt_gauge 0\n"), std::string::npos);
  EXPECT_NE(prom.find("rt_hist_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(json.find("\"rt_hist\":{\"bounds\":[1,10],"
                      "\"buckets\":[0,0,0],\"count\":0,\"sum\":0.000000}"),
            std::string::npos);
#endif
}

// A scrape-side parse of one histogram family from the exposition text:
// what a Prometheus server would reconstruct from GET /metrics.
struct ScrapedHistogram {
  std::vector<std::pair<double, uint64_t>> buckets;  // (le, cumulative)
  bool has_inf_bucket = false;
  uint64_t inf_cumulative = 0;
  uint64_t count = 0;
  double sum = 0.0;
};

ScrapedHistogram ScrapeHistogram(const std::string& text,
                                 const std::string& name) {
  ScrapedHistogram scraped;
  std::istringstream in(text);
  std::string line;
  const std::string bucket_prefix = name + "_bucket{le=\"";
  while (std::getline(in, line)) {
    if (line.rfind(bucket_prefix, 0) == 0) {
      size_t close = line.find('"', bucket_prefix.size());
      std::string le = line.substr(bucket_prefix.size(),
                                   close - bucket_prefix.size());
      uint64_t value = std::stoull(line.substr(line.rfind(' ') + 1));
      if (le == "+Inf") {
        scraped.has_inf_bucket = true;
        scraped.inf_cumulative = value;
      } else {
        scraped.buckets.emplace_back(std::strtod(le.c_str(), nullptr), value);
      }
    } else if (line.rfind(name + "_count ", 0) == 0) {
      scraped.count = std::stoull(line.substr(line.rfind(' ') + 1));
    } else if (line.rfind(name + "_sum ", 0) == 0) {
      scraped.sum = std::strtod(line.substr(line.rfind(' ') + 1).c_str(),
                                nullptr);
    }
  }
  return scraped;
}

// Conformance gate for the moment /metrics is actually scraped: what the
// exporter writes must parse back to exactly the registered histogram —
// every bound byte-exact under strtod, cumulative buckets monotone, the
// +Inf bucket present and equal to _count.
TEST(ExporterTest, PrometheusScrapeParseRoundTripsDefaultBucketLayouts) {
  MetricsRegistry reg;
  struct Layout {
    const char* name;
    std::vector<double> bounds;
  };
  // CountBuckets reaches 1048576: a bound that a %.6g-style rendering
  // truncates to "1.04858e+06", which scrapes back as a DIFFERENT bucket
  // boundary (regression).
  const Layout layouts[] = {
      {"rt_latency_ms", MetricsRegistry::LatencyBucketsMs()},
      {"rt_counts", MetricsRegistry::CountBuckets()},
      {"rt_unit", MetricsRegistry::UnitBuckets()},
  };
  for (const Layout& layout : layouts) {
    Histogram& h = reg.GetHistogram(layout.name, layout.bounds);
    // One observation per bucket boundary plus one overflow, so every
    // exported cumulative value is distinctive.
    for (double b : layout.bounds) h.Observe(b);
    h.Observe(layout.bounds.back() * 2);
  }

  const std::string text = reg.Snapshot().ToPrometheusText();
  for (const Layout& layout : layouts) {
    SCOPED_TRACE(layout.name);
    ScrapedHistogram scraped = ScrapeHistogram(text, layout.name);
    ASSERT_EQ(scraped.buckets.size(), layout.bounds.size());
    for (size_t i = 0; i < layout.bounds.size(); ++i) {
      // Byte-exact bound round-trip: a scraper must see the bucket
      // boundaries the registry was configured with, not a rounding.
      EXPECT_EQ(scraped.buckets[i].first, layout.bounds[i])
          << "bound " << i << " did not round-trip";
      if (i > 0) {
        EXPECT_GE(scraped.buckets[i].second, scraped.buckets[i - 1].second)
            << "cumulative buckets must be monotone";
      }
    }
    ASSERT_TRUE(scraped.has_inf_bucket);
    EXPECT_EQ(scraped.inf_cumulative, scraped.count);
#if SUBDEX_METRICS_ENABLED
    EXPECT_EQ(scraped.count, layout.bounds.size() + 1);
    EXPECT_GE(scraped.buckets.back().second, layout.bounds.size());
#else
    EXPECT_EQ(scraped.count, 0u);
#endif
  }
}

TEST(ExporterTest, PrometheusHelpUnescapesToOriginal) {
  MetricsSnapshot snap;
  const std::string help = "line1\nline2 with \\backslash";
  snap.counters.push_back({"esc_total", help, 1});
  std::string text = snap.ToPrometheusText();
  std::string line;
  std::istringstream in(text);
  std::string unescaped;
  while (std::getline(in, line)) {
    if (line.rfind("# HELP esc_total ", 0) != 0) continue;
    std::string escaped = line.substr(std::string("# HELP esc_total ").size());
    for (size_t i = 0; i < escaped.size(); ++i) {
      if (escaped[i] == '\\' && i + 1 < escaped.size()) {
        unescaped += escaped[i + 1] == 'n' ? '\n' : escaped[i + 1];
        ++i;
      } else {
        unescaped += escaped[i];
      }
    }
  }
  EXPECT_EQ(unescaped, help);
}

// ---------------------------------------------- StepPhase / StepTimings ---

TEST(StepPhaseTest, EveryPhaseHasADistinctName) {
  const StepPhase phases[] = {
      StepPhase::kNone, StepPhase::kMaterialize, StepPhase::kRmGeneration,
      StepPhase::kGmmSelection, StepPhase::kRecommendations};
  std::vector<std::string> names;
  for (StepPhase p : phases) {
    std::string name = StepPhaseName(p);
    EXPECT_FALSE(name.empty());
    EXPECT_NE(name, "unknown");
    names.push_back(std::move(name));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(StepTimingsTest, DefaultIsZeroAndPipelineAccumulates) {
  StepTimings t;
  EXPECT_EQ(t.materialize_ms, 0.0);
  EXPECT_EQ(t.rm_generation_ms, 0.0);
  EXPECT_EQ(t.gmm_selection_ms, 0.0);
  EXPECT_EQ(t.recommendation_ms, 0.0);
  EXPECT_EQ(t.pool_tasks, 0u);

  // SelectForDisplay adds into the caller's StepTimings rather than
  // overwriting: two passes through one struct accumulate.
  auto db = MakeTinyRestaurantDb();
  EngineConfig config = TinyConfig();
  config.utility.database_size = db->num_records();
  RmPipeline pipeline(&config, nullptr);
  RatingGroup all = RatingGroup::Materialize(*db, GroupSelection{});
  SeenMapsTracker seen(db->num_dimensions());
  EXPECT_FALSE(
      pipeline.SelectForDisplay(all, seen, nullptr, &t, StopToken(), nullptr)
          .empty());
  const double first_pass = t.rm_generation_ms;
  EXPECT_GE(first_pass, 0.0);
  EXPECT_FALSE(
      pipeline.SelectForDisplay(all, seen, nullptr, &t, StopToken(), nullptr)
          .empty());
  EXPECT_GE(t.rm_generation_ms, first_pass);
}

// ---------------------------------------------------- RatingGroupCache ---

TEST(CacheStatsTest, HitMissCountersAreExact) {
  auto db = MakeTinyRestaurantDb();
  RatingGroupCache cache(db.get(), /*capacity=*/4);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  cache.Get(GroupSelection{});
  RatingGroupCache::Stats after_first = cache.stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, 1u);
  EXPECT_EQ(after_first.coalesced, 0u);
  EXPECT_EQ(after_first.entries, 1u);
  cache.Get(GroupSelection{});
  RatingGroupCache::Stats after_second = cache.stats();
  EXPECT_EQ(after_second.hits, 1u);
  EXPECT_EQ(after_second.misses, 1u);
  EXPECT_EQ(after_second.coalesced, 0u);
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

// ----------------------------------------------------------- StepTrace ---

TEST(StepTraceTest, ToJsonOmitsTimingsOnRequest) {
  StepTrace trace;
  trace.group_size = 12;
  trace.maps_displayed = 3;
  trace.spans.push_back({StepPhase::kMaterialize, 0.0, 1.5, true});
  trace.spans.push_back({StepPhase::kRmGeneration, 1.5, 2.0, false});
  trace.display.candidates = 40;
  trace.display.pruned_ci = 10;
  trace.cache.misses = 1;

  std::string timed = trace.ToJson(/*include_timings=*/true);
  EXPECT_NE(timed.find("\"start_ms\":"), std::string::npos);
  EXPECT_NE(timed.find("\"duration_ms\":"), std::string::npos);

  std::string untimed = trace.ToJson(/*include_timings=*/false);
  EXPECT_EQ(untimed.find("start_ms"), std::string::npos);
  EXPECT_EQ(untimed.find("duration_ms"), std::string::npos);
  // Phase order and completion flags survive the deterministic view.
  EXPECT_NE(untimed.find("{\"phase\":\"materialize\",\"completed\":true}"),
            std::string::npos);
  EXPECT_NE(untimed.find("{\"phase\":\"rm-generation\",\"completed\":false}"),
            std::string::npos);
  EXPECT_NE(untimed.find("\"candidates\":40"), std::string::npos);
  EXPECT_NE(untimed.find("\"pruned_ci\":10"), std::string::npos);
}

// --------------------------------------------------- engine end-to-end ---

#if SUBDEX_METRICS_ENABLED
TEST(EngineMetricsTest, ExecuteStepPopulatesTraceAndGlobalRegistry) {
  MetricsRegistry::Global().ResetForTest();
  auto db = MakeTinyRestaurantDb();
  EngineConfig config = TinyConfig();
  SdeEngine engine(db.get(), config);
  StepResult step = engine.ExecuteStep(GroupSelection{}, true);

  EXPECT_EQ(step.trace.group_size, step.group_size);
  EXPECT_EQ(step.trace.maps_displayed, step.maps.size());
  EXPECT_EQ(step.trace.recommendations_returned,
            step.recommendations.size());
  ASSERT_FALSE(step.trace.spans.empty());
  EXPECT_EQ(step.trace.spans.front().phase, StepPhase::kMaterialize);
  EXPECT_TRUE(step.trace.spans.front().completed);
  EXPECT_GE(step.trace.display.candidates, step.maps.size());
  // The step's own group was a cold miss.
  EXPECT_GE(step.trace.cache.misses, 1u);

  MetricsSnapshot snap = engine.MetricsSnapshot();
  bool found_steps = false;
  for (const auto& c : snap.counters) {
    if (c.name == "subdex_engine_steps_total") {
      found_steps = true;
      EXPECT_EQ(c.value, 1u);
    }
  }
  EXPECT_TRUE(found_steps);

  std::ostringstream dump;
  DumpMetrics(dump);
  EXPECT_NE(dump.str().find("# TYPE subdex_engine_steps_total counter"),
            std::string::npos);
  EXPECT_NE(dump.str().find("subdex_group_cache_misses_total"),
            std::string::npos);
  MetricsRegistry::Global().ResetForTest();
}
#endif  // SUBDEX_METRICS_ENABLED

}  // namespace
}  // namespace subdex
