#ifndef SUBDEX_TESTS_TEST_SUPPORT_H_
#define SUBDEX_TESTS_TEST_SUPPORT_H_

#include <memory>
#include <string>
#include <vector>

#include "subjective/subjective_db.h"

namespace subdex {
namespace testing_support {

/// A tiny hand-built restaurant database in the spirit of Figure 2:
/// reviewers (gender, age_group, occupation), restaurants (cuisine multi,
/// city, neighborhood), 4 rating dimensions (overall/food/service/ambiance)
/// on the 1..5 scale. Deterministic content; finalized.
std::unique_ptr<SubjectiveDatabase> MakeTinyRestaurantDb();

/// A configurable database: `num_reviewers` x `num_items`, reviewer
/// attributes {gender(2), age_group(3)}, item attributes {city(4),
/// cuisine multi(3)}, `num_dimensions` dimensions, one rating per
/// (reviewer, item) pair sampled by the seed. Finalized.
std::unique_ptr<SubjectiveDatabase> MakeRandomDb(size_t num_reviewers,
                                                 size_t num_items,
                                                 size_t num_ratings,
                                                 size_t num_dimensions,
                                                 uint64_t seed);

}  // namespace testing_support
}  // namespace subdex

#endif  // SUBDEX_TESTS_TEST_SUPPORT_H_
