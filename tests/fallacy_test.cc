#include <gtest/gtest.h>

#include "engine/fallacy.h"
#include "tests/test_support.h"
#include "util/check.h"

namespace subdex {
namespace {

// Builds a database engineered to exhibit Simpson's paradox on the item
// attribute "city" under the reviewer attribute "gender":
//   overall, city A rates above city B;
//   restricted to gender F, city B rates above city A.
// Achieved by giving F reviewers mostly low ratings in A and high in B,
// while M reviewers (who dominate A) rate A very high.
std::unique_ptr<SubjectiveDatabase> MakeSimpsonDb() {
  Schema reviewer_schema({{"gender", AttributeType::kCategorical}});
  Schema item_schema({{"city", AttributeType::kCategorical}});
  auto db = std::make_unique<SubjectiveDatabase>(
      reviewer_schema, item_schema, std::vector<std::string>{"overall"}, 5);
  // Reviewer 0: F, reviewer 1: M. Item 0: city A, item 1: city B.
  SUBDEX_CHECK(db->reviewers().AppendRow({std::string("F")}).ok());
  SUBDEX_CHECK(db->reviewers().AppendRow({std::string("M")}).ok());
  SUBDEX_CHECK(db->items().AppendRow({std::string("A")}).ok());
  SUBDEX_CHECK(db->items().AppendRow({std::string("B")}).ok());

  auto add = [&](RowId reviewer, RowId item, int score, int times) {
    for (int i = 0; i < times; ++i) {
      SUBDEX_CHECK(db->AddRating(reviewer, item,
                                 {static_cast<double>(score)})
                       .ok());
    }
  };
  // F: A is bad (2), B is great (5).
  add(0, 0, 2, 20);
  add(0, 1, 5, 20);
  // M: A is great (5) with heavy volume, B is mediocre (3).
  add(1, 0, 5, 80);
  add(1, 1, 3, 20);
  db->FinalizeIndexes();
  // Sanity: overall, A (avg 4.4) > B (avg 4.0); within F, A 2 < B 5.
  return db;
}

TEST(FallacyTest, DetectsSimpsonReversal) {
  auto db = MakeSimpsonDb();
  RatingGroup parent = RatingGroup::Materialize(*db, GroupSelection{});
  GroupSelection f_only;
  f_only.reviewer_pred =
      Predicate({{0, db->reviewers().LookupValue(0, "F")}});
  RatingGroup child = RatingGroup::Materialize(*db, f_only);

  std::vector<FallacyWarning> warnings =
      DetectDrillDownFallacies(parent, child);
  ASSERT_EQ(warnings.size(), 1u);
  const FallacyWarning& w = warnings[0];
  EXPECT_EQ(w.key.side, Side::kItem);
  EXPECT_EQ(w.key.attribute, 0u);  // city
  EXPECT_LT(w.parent_gap * w.child_gap, 0.0);
  std::string text = w.Describe(*db);
  EXPECT_NE(text.find("city"), std::string::npos);
  EXPECT_NE(text.find("reverses"), std::string::npos);
}

TEST(FallacyTest, NoWarningWithoutReversal) {
  auto db = MakeSimpsonDb();
  // Drilling into M keeps A above B — consistent with the parent view.
  RatingGroup parent = RatingGroup::Materialize(*db, GroupSelection{});
  GroupSelection m_only;
  m_only.reviewer_pred =
      Predicate({{0, db->reviewers().LookupValue(0, "M")}});
  RatingGroup child = RatingGroup::Materialize(*db, m_only);
  EXPECT_TRUE(DetectDrillDownFallacies(parent, child).empty());
}

TEST(FallacyTest, MinCountFiltersThinSubgroups) {
  auto db = MakeSimpsonDb();
  RatingGroup parent = RatingGroup::Materialize(*db, GroupSelection{});
  GroupSelection f_only;
  f_only.reviewer_pred =
      Predicate({{0, db->reviewers().LookupValue(0, "F")}});
  RatingGroup child = RatingGroup::Materialize(*db, f_only);
  FallacyDetectionOptions strict;
  strict.min_count = 1000;  // nothing qualifies
  EXPECT_TRUE(DetectDrillDownFallacies(parent, child, strict).empty());
}

TEST(FallacyTest, MinGapFiltersSmallFlips) {
  auto db = MakeSimpsonDb();
  RatingGroup parent = RatingGroup::Materialize(*db, GroupSelection{});
  GroupSelection f_only;
  f_only.reviewer_pred =
      Predicate({{0, db->reviewers().LookupValue(0, "F")}});
  RatingGroup child = RatingGroup::Materialize(*db, f_only);
  FallacyDetectionOptions strict;
  strict.min_gap = 10.0;  // impossible on a 5-point scale
  EXPECT_TRUE(DetectDrillDownFallacies(parent, child, strict).empty());
}

TEST(FallacyTest, RandomDataRarelyTriggers) {
  auto db = testing_support::MakeRandomDb(60, 20, 1200, 1, 301);
  RatingGroup parent = RatingGroup::Materialize(*db, GroupSelection{});
  GroupSelection child_sel;
  child_sel.reviewer_pred =
      Predicate({{0, db->reviewers().LookupValue(0, "F")}});
  RatingGroup child = RatingGroup::Materialize(*db, child_sel);
  // Uniform random ratings carry no structure; with the default gap
  // threshold the detector stays quiet.
  FallacyDetectionOptions options;
  options.min_count = 30;
  EXPECT_LE(DetectDrillDownFallacies(parent, child, options).size(), 1u);
}

}  // namespace
}  // namespace subdex
