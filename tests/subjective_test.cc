#include <gtest/gtest.h>

#include <set>

#include "subjective/operation.h"
#include "subjective/rating_group.h"
#include "subjective/subjective_db.h"
#include "tests/test_support.h"

namespace subdex {
namespace {

using testing_support::MakeRandomDb;
using testing_support::MakeTinyRestaurantDb;

// Convenience: builds a predicate over named attribute/value pairs.
Predicate Pred(const Table& table,
               const std::vector<std::pair<std::string, std::string>>& pairs) {
  std::vector<AttributeValue> conjuncts;
  for (const auto& [attr, value] : pairs) {
    int idx = table.schema().IndexOf(attr);
    EXPECT_GE(idx, 0);
    ValueCode code = table.LookupValue(static_cast<size_t>(idx), value);
    EXPECT_NE(code, kNullCode) << attr << "=" << value;
    conjuncts.push_back({static_cast<size_t>(idx), code});
  }
  return Predicate(conjuncts);
}

// ------------------------------------------------------ SubjectiveDb ----

TEST(SubjectiveDbTest, BasicShape) {
  auto db = MakeTinyRestaurantDb();
  EXPECT_EQ(db->num_reviewers(), 6u);
  EXPECT_EQ(db->num_items(), 4u);
  EXPECT_EQ(db->num_records(), 12u);
  EXPECT_EQ(db->num_dimensions(), 4u);
  EXPECT_EQ(db->scale(), 5);
  EXPECT_EQ(db->dimension_name(1), "food");
  EXPECT_EQ(db->DimensionIndexOf("service"), 2);
  EXPECT_EQ(db->DimensionIndexOf("nope"), -1);
}

TEST(SubjectiveDbTest, RatingValidation) {
  auto db = std::make_unique<SubjectiveDatabase>(
      Schema({{"a", AttributeType::kCategorical}}),
      Schema({{"b", AttributeType::kCategorical}}),
      std::vector<std::string>{"overall"}, 5);
  ASSERT_TRUE(db->reviewers().AppendRow({std::string("x")}).ok());
  ASSERT_TRUE(db->items().AppendRow({std::string("y")}).ok());
  EXPECT_FALSE(db->AddRating(5, 0, {3.0}).ok());   // bad reviewer
  EXPECT_FALSE(db->AddRating(0, 5, {3.0}).ok());   // bad item
  EXPECT_FALSE(db->AddRating(0, 0, {3.0, 4.0}).ok());  // arity
  EXPECT_TRUE(db->AddRating(0, 0, {7.5}).ok());    // clamped
  EXPECT_EQ(db->score(0, 0), 5);
  EXPECT_TRUE(db->AddRating(0, 0, {-2.0}).ok());
  EXPECT_EQ(db->score(0, 1), 1);
  db->FinalizeIndexes();
  EXPECT_FALSE(db->AddRating(0, 0, {3.0}).ok());   // after finalize
}

TEST(SubjectiveDbTest, ReviewerAndItemIndexes) {
  auto db = MakeTinyRestaurantDb();
  size_t total = 0;
  for (RowId u = 0; u < db->num_reviewers(); ++u) {
    for (RecordId r : db->RecordsOfReviewer(u)) {
      EXPECT_EQ(db->reviewer_of(r), u);
      ++total;
    }
  }
  EXPECT_EQ(total, db->num_records());
  total = 0;
  for (RowId i = 0; i < db->num_items(); ++i) {
    for (RecordId r : db->RecordsOfItem(i)) {
      EXPECT_EQ(db->item_of(r), i);
      ++total;
    }
  }
  EXPECT_EQ(total, db->num_records());
}

TEST(SubjectiveDbTest, MatchRowsAgreesWithPredicateSelect) {
  auto db = MakeRandomDb(50, 20, 300, 2, 99);
  for (Side side : {Side::kReviewer, Side::kItem}) {
    const Table& table = db->table(side);
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      for (size_t v = 0; v < table.DistinctValueCount(a); ++v) {
        Predicate p({{a, static_cast<ValueCode>(v)}});
        std::vector<RowId> direct = p.Select(table);
        std::vector<uint32_t> via_bitmap =
            db->MatchRows(side, p).ToIndices();
        EXPECT_EQ(direct, std::vector<RowId>(via_bitmap.begin(),
                                             via_bitmap.end()));
      }
    }
  }
}

TEST(SubjectiveDbTest, MatchRecordsIsConjunction) {
  auto db = MakeTinyRestaurantDb();
  Predicate young = Pred(db->reviewers(), {{"age_group", "young"}});
  Predicate nyc = Pred(db->items(), {{"city", "nyc"}});
  std::vector<RecordId> records = db->MatchRecords(young, nyc);
  for (RecordId r : records) {
    EXPECT_TRUE(young.Matches(db->reviewers(), db->reviewer_of(r)));
    EXPECT_TRUE(nyc.Matches(db->items(), db->item_of(r)));
  }
  // Brute-force count.
  size_t expected = 0;
  for (RecordId r = 0; r < db->num_records(); ++r) {
    if (young.Matches(db->reviewers(), db->reviewer_of(r)) &&
        nyc.Matches(db->items(), db->item_of(r))) {
      ++expected;
    }
  }
  EXPECT_EQ(records.size(), expected);
}

TEST(SubjectiveDbTest, SetScoreClampsAndPersists) {
  auto db = MakeTinyRestaurantDb();
  db->SetScore(0, 0, 9);
  EXPECT_EQ(db->score(0, 0), 5);
  db->SetScore(0, 0, -3);
  EXPECT_EQ(db->score(0, 0), 1);
}

// -------------------------------------------------------- RatingGroup ----

TEST(RatingGroupTest, EmptySelectionIsWholeDatabase) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup g = RatingGroup::Materialize(*db, GroupSelection{});
  EXPECT_EQ(g.size(), db->num_records());
}

TEST(RatingGroupTest, SelectionFilters) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection sel;
  sel.reviewer_pred = Pred(db->reviewers(), {{"gender", "F"}});
  RatingGroup g = RatingGroup::Materialize(*db, sel);
  EXPECT_GT(g.size(), 0u);
  EXPECT_LT(g.size(), db->num_records());
  for (RecordId r : g.records()) {
    EXPECT_TRUE(sel.reviewer_pred.Matches(db->reviewers(),
                                          db->reviewer_of(r)));
  }
}

TEST(RatingGroupTest, AverageScoreMatchesManual) {
  auto db = MakeTinyRestaurantDb();
  RatingGroup g = RatingGroup::Materialize(*db, GroupSelection{});
  double sum = 0;
  for (RecordId r : g.records()) sum += db->score(0, r);
  EXPECT_DOUBLE_EQ(g.AverageScore(0), sum / g.size());
}

TEST(GroupSelectionTest, EditDistance) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection a;
  a.reviewer_pred = Pred(db->reviewers(), {{"gender", "F"}});
  GroupSelection b = a;
  EXPECT_EQ(a.EditDistance(b), 0u);
  b.reviewer_pred = b.reviewer_pred.With(
      {static_cast<size_t>(db->reviewers().schema().IndexOf("age_group")),
       db->reviewers().LookupValue(1, "young")});
  EXPECT_EQ(a.EditDistance(b), 1u);  // add
  GroupSelection c;
  c.reviewer_pred = Pred(db->reviewers(), {{"gender", "M"}});
  EXPECT_EQ(a.EditDistance(c), 1u);  // change
  GroupSelection d;  // empty
  EXPECT_EQ(a.EditDistance(d), 1u);  // remove
  d.item_pred = Pred(db->items(), {{"city", "nyc"}});
  EXPECT_EQ(a.EditDistance(d), 2u);  // cross-side add + remove
}

// ---------------------------------------------------------- Operation ----

TEST(OperationTest, SingleEditEnumerationIsCompleteAndValid) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection current;
  current.reviewer_pred = Pred(db->reviewers(), {{"gender", "F"}});
  OperationEnumerationOptions options;
  options.max_edits = 1;
  std::vector<Operation> ops =
      EnumerateCandidateOperations(*db, current, options);
  ASSERT_FALSE(ops.empty());
  std::set<std::string> seen;
  for (const Operation& op : ops) {
    EXPECT_EQ(op.num_edits, 1u);
    EXPECT_EQ(current.EditDistance(op.target), 1u) << op.Describe(*db);
    EXPECT_NE(op.target, current);
    // No duplicates.
    EXPECT_TRUE(seen.insert(op.target.ToString(*db)).second);
  }
  // Expected count: removes (1 for gender) + changes (1: gender=M) +
  // adds over unconstrained attributes on both sides.
  size_t expected = 1 + 1;
  expected += db->reviewers().DistinctValueCount(1);  // age_group
  expected += db->reviewers().DistinctValueCount(2);  // occupation
  for (size_t a = 0; a < db->items().num_attributes(); ++a) {
    expected += db->items().DistinctValueCount(a);
  }
  EXPECT_EQ(ops.size(), expected);
}

TEST(OperationTest, TwoEditCandidatesRespectEditBound) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection current;
  current.reviewer_pred =
      Pred(db->reviewers(), {{"gender", "F"}, {"age_group", "young"}});
  OperationEnumerationOptions options;
  options.max_edits = 2;
  options.max_candidates = 10000;
  std::vector<Operation> ops =
      EnumerateCandidateOperations(*db, current, options);
  bool saw_composite = false;
  for (const Operation& op : ops) {
    size_t dist = current.EditDistance(op.target);
    EXPECT_GE(dist, 1u);
    EXPECT_LE(dist, 2u) << op.Describe(*db);
    if (op.kind == OperationKind::kComposite) saw_composite = true;
  }
  EXPECT_TRUE(saw_composite);
}

TEST(OperationTest, CandidateCapIsRespected) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection current;
  current.reviewer_pred = Pred(db->reviewers(), {{"gender", "F"}});
  OperationEnumerationOptions options;
  options.max_edits = 2;
  options.max_candidates = 30;
  std::vector<Operation> ops =
      EnumerateCandidateOperations(*db, current, options);
  // Singles are never truncated; composites fill at most the remaining
  // budget.
  OperationEnumerationOptions singles_only = options;
  singles_only.max_edits = 1;
  size_t num_singles =
      EnumerateCandidateOperations(*db, current, singles_only).size();
  EXPECT_LE(ops.size(), std::max(num_singles, options.max_candidates));
}

TEST(OperationTest, EnumerationIsDeterministic) {
  auto db = MakeTinyRestaurantDb();
  GroupSelection current;
  OperationEnumerationOptions options;
  auto a = EnumerateCandidateOperations(*db, current, options);
  auto b = EnumerateCandidateOperations(*db, current, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].target, b[i].target);
  }
}

TEST(OperationTest, GeneralizeFromEmptySelectionYieldsNoRemoves) {
  auto db = MakeTinyRestaurantDb();
  OperationEnumerationOptions options;
  options.max_edits = 1;
  std::vector<Operation> ops =
      EnumerateCandidateOperations(*db, GroupSelection{}, options);
  for (const Operation& op : ops) {
    EXPECT_EQ(op.kind, OperationKind::kFilter);
  }
}

}  // namespace
}  // namespace subdex
