#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>

#include "util/bitmap.h"
#include "util/deadline.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace subdex {
namespace {

// ---------------------------------------------------------------- Rng ----

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU32(), b.NextU32());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU32() == b.NextU32()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformU32StaysInBound) {
  Rng rng(7);
  for (uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU32(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(11);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.UniformDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NormalHasRoughlyRequestedMoments) {
  Rng rng(17);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) stat.Add(rng.Normal(2.0, 3.0));
  EXPECT_NEAR(stat.mean(), 2.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 3.0, 0.1);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, WeightedIndexRespectsZeroWeights) {
  Rng rng(23);
  std::vector<double> weights = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.WeightedIndex(weights), 1u);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// --------------------------------------------------------------- Zipf ----

TEST(ZipfTest, PmfSumsToOne) {
  ZipfSampler zipf(20, 1.2);
  double total = 0.0;
  for (size_t i = 0; i < zipf.size(); ++i) total += zipf.Pmf(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsDecreasing) {
  ZipfSampler zipf(30, 1.0);
  for (size_t i = 1; i < zipf.size(); ++i) {
    EXPECT_GE(zipf.Pmf(i - 1), zipf.Pmf(i));
  }
}

TEST(ZipfTest, SampleFrequenciesTrackPmf) {
  ZipfSampler zipf(5, 1.0);
  Rng rng(31);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(static_cast<double>(counts[i]) / n, zipf.Pmf(i), 0.02);
  }
}

TEST(ZipfTest, ExponentZeroIsUniform) {
  ZipfSampler zipf(4, 0.0);
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(zipf.Pmf(i), 0.25, 1e-9);
}

// ------------------------------------------------------- RunningStat ----

TEST(RunningStatTest, MatchesBatchFormulas) {
  std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStat stat;
  for (double x : xs) stat.Add(x);
  EXPECT_EQ(stat.count(), xs.size());
  EXPECT_DOUBLE_EQ(stat.mean(), Mean(xs));
  EXPECT_NEAR(stat.stddev(), StdDev(xs), 1e-12);
}

TEST(RunningStatTest, MergeEqualsSequential) {
  Rng rng(37);
  RunningStat whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Normal(5.0, 2.0);
    whole.Add(x);
    (i % 2 == 0 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
}

TEST(RunningStatTest, EmptyAndSingleton) {
  RunningStat stat;
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.variance(), 0.0);
  stat.Add(3.0);
  EXPECT_DOUBLE_EQ(stat.mean(), 3.0);
  EXPECT_EQ(stat.variance(), 0.0);
}

TEST(StatsTest, MedianOddEvenEmpty) {
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(StatsTest, MedianOfRunsRunsSampleExactlyRepeatsTimes) {
  int calls = 0;
  double median = MedianOfRuns(5, [&] {
    ++calls;
    return static_cast<double>(calls);  // samples 1..5
  });
  EXPECT_EQ(calls, 5);
  EXPECT_DOUBLE_EQ(median, 3.0);
  calls = 0;
  EXPECT_DOUBLE_EQ(MedianOfRuns(0, [&] {
                     ++calls;
                     return 7.0;
                   }),
                   7.0);  // repeats < 1 still runs once
  EXPECT_EQ(calls, 1);
}

TEST(StatsTest, MedianOfRunsSuppressesAnOutlierRun) {
  // The point of median-of-N benchmarking: one run hit by an injected
  // stall (here a sleep standing in for a page-fault burst) must not leak
  // into the reported value.
  int call = 0;
  double median = MedianOfRuns(3, [&] {
    ++call;
    return WallTimeMs([&] {
      if (call == 2) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    });
  });
  EXPECT_LT(median, 40.0);  // the 50 ms outlier was discarded
}

TEST(StatsTest, WallTimeMsMeasuresElapsedTime) {
  double ms = WallTimeMs(
      [] { std::this_thread::sleep_for(std::chrono::milliseconds(10)); });
  EXPECT_GE(ms, 9.0);  // sleep_for may round; never returns early by much
  EXPECT_GE(WallTimeMs([] {}), 0.0);
}

// ------------------------------------------------- Hoeffding-Serfling ----

TEST(HoeffdingTest, VacuousForTinySamples) {
  EXPECT_EQ(HoeffdingSerflingEpsilon(0, 100, 0.05), 1.0);
  EXPECT_EQ(HoeffdingSerflingEpsilon(1, 100, 0.05), 1.0);
}

TEST(HoeffdingTest, ZeroWhenFullyProcessed) {
  EXPECT_EQ(HoeffdingSerflingEpsilon(100, 100, 0.05), 0.0);
  EXPECT_EQ(HoeffdingSerflingEpsilon(150, 100, 0.05), 0.0);
}

TEST(HoeffdingTest, ShrinksWithMoreSamples) {
  double prev = 1.0;
  for (size_t u : {5u, 10u, 50u, 200u, 500u, 900u}) {
    double eps = HoeffdingSerflingEpsilon(u, 1000, 0.05);
    EXPECT_LE(eps, prev);
    prev = eps;
  }
  EXPECT_LT(prev, 0.1);
}

TEST(HoeffdingTest, TighterWithLargerDelta) {
  double strict = HoeffdingSerflingEpsilon(100, 1000, 0.01);
  double loose = HoeffdingSerflingEpsilon(100, 1000, 0.2);
  EXPECT_GT(strict, loose);
}

// A statistical coverage property: the true mean of a random [0,1]
// population lies within the interval around the running mean of a random
// prefix, for the vast majority of random trials.
TEST(HoeffdingTest, IntervalCoversTrueMean) {
  Rng rng(41);
  const size_t n = 2000;
  std::vector<double> population(n);
  for (double& x : population) x = rng.UniformDouble();
  double true_mean = Mean(population);

  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> copy = population;
    rng.Shuffle(&copy);
    size_t u = 100 + rng.UniformU32(400);
    double prefix_mean =
        Mean(std::vector<double>(copy.begin(), copy.begin() + u));
    double eps = HoeffdingSerflingEpsilon(u, n, 0.05);
    if (std::fabs(prefix_mean - true_mean) <= eps) ++covered;
  }
  // The bound is conservative (worst-case), so coverage should be near 100%.
  EXPECT_GE(covered, trials * 95 / 100);
}

// -------------------------------------------------------------- Bitmap ---

TEST(BitmapTest, SetTestClear) {
  Bitmap b(130);
  EXPECT_EQ(b.Count(), 0u);
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(1));
  EXPECT_EQ(b.Count(), 3u);
  b.Clear(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(BitmapTest, AllOnesConstructorHandlesPadding) {
  Bitmap b(70, true);
  EXPECT_EQ(b.Count(), 70u);
  std::vector<uint32_t> idx = b.ToIndices();
  ASSERT_EQ(idx.size(), 70u);
  EXPECT_EQ(idx.front(), 0u);
  EXPECT_EQ(idx.back(), 69u);
}

TEST(BitmapTest, AndOr) {
  Bitmap a(100), b(100);
  a.Set(3);
  a.Set(50);
  b.Set(50);
  b.Set(99);
  Bitmap a_and = a;
  a_and.And(b);
  EXPECT_EQ(a_and.Count(), 1u);
  EXPECT_TRUE(a_and.Test(50));
  Bitmap a_or = a;
  a_or.Or(b);
  EXPECT_EQ(a_or.Count(), 3u);
}

TEST(BitmapTest, ToIndicesRoundTrip) {
  Rng rng(43);
  Bitmap b(500);
  std::set<uint32_t> expected;
  for (int i = 0; i < 80; ++i) {
    uint32_t idx = rng.UniformU32(500);
    b.Set(idx);
    expected.insert(idx);
  }
  std::vector<uint32_t> got = b.ToIndices();
  EXPECT_EQ(got.size(), expected.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), expected.begin()));
}

// -------------------------------------------------------------- String ---

TEST(StringTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,b,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(StringTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "|"), "x|y|z");
  EXPECT_EQ(Split("x|y|z", '|'), parts);
}

TEST(StringTest, TrimAndLower) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(ToLower("AbC-9"), "abc-9");
}

TEST(StringTest, ParseDouble) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble("-2", &v));
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("3.5x", &v));
  EXPECT_FALSE(ParseDouble("nan", &v));
}

TEST(StringTest, ParseInt) {
  int v = 0;
  EXPECT_TRUE(ParseInt("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(ParseInt("4.2", &v));
  EXPECT_FALSE(ParseInt("", &v));
}

TEST(StringTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
}

// ---------------------------------------------------------- ThreadPool ---

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForZeroItemsIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](size_t) { FAIL(); });
}

TEST(ThreadPoolTest, WaitIdleOnFreshPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();
  SUCCEED();
}

TEST(ThreadPoolTest, ChunkedParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(103);
  pool.ParallelFor(hits.size(), 10, [&hits](size_t begin, size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, hits.size());
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [](size_t i) {
                         if (i == 57) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The pool survives a failed batch and runs later work normally.
  std::atomic<int> counter{0};
  pool.ParallelFor(50, [&counter](size_t) { counter.fetch_add(1); });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ConcurrentBatchesOnOnePoolDontInterfere) {
  // Two caller threads issue overlapping ParallelFor batches on a shared
  // pool; each must see exactly its own batch completed on return.
  ThreadPool pool(3);
  auto run_batches = [&pool](std::vector<std::atomic<int>>* hits) {
    for (int round = 0; round < 10; ++round) {
      pool.ParallelFor(hits->size(), [hits](size_t i) {
        (*hits)[i].fetch_add(1);
      });
    }
  };
  std::vector<std::atomic<int>> a(211), b(173);
  std::thread ta([&] { run_batches(&a); });
  std::thread tb([&] { run_batches(&b); });
  ta.join();
  tb.join();
  for (auto& h : a) EXPECT_EQ(h.load(), 10);
  for (auto& h : b) EXPECT_EQ(h.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForCompletes) {
  // A batch body issuing its own batch on the same pool must not deadlock
  // even when every worker is occupied by the outer batch.
  ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.ParallelFor(4, [&pool, &inner_total](size_t) {
    pool.ParallelFor(8, [&inner_total](size_t) { inner_total.fetch_add(1); });
  });
  EXPECT_EQ(inner_total.load(), 4 * 8);
}

TEST(ThreadPoolTest, StatsCountTasksAndBatches) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.stats().tasks_submitted, 0u);
  pool.Submit([] {});
  pool.ParallelFor(64, [](size_t) {});
  pool.WaitIdle();
  ThreadPool::Stats stats = pool.stats();
  EXPECT_GE(stats.tasks_submitted, 2u);
  EXPECT_EQ(stats.batches_run, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

// ------------------------------------------------------------ Deadline ---

TEST(DeadlineTest, DefaultIsUnlimited) {
  Deadline d;
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
}

TEST(DeadlineTest, ExpiredIsExpiredImmediately) {
  Deadline d = Deadline::Expired();
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, FromNowMsNonPositiveIsExpired) {
  EXPECT_TRUE(Deadline::FromNowMs(0).expired());
  EXPECT_TRUE(Deadline::FromNowMs(-5).expired());
}

TEST(DeadlineTest, FarFutureIsNotExpired) {
  Deadline d = Deadline::FromNowMs(60'000);
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
  EXPECT_FALSE(std::isinf(d.remaining_ms()));
}

TEST(DeadlineTest, ShortDeadlineEventuallyExpires) {
  Deadline d = Deadline::FromNowMs(1);
  while (!d.expired()) {
    std::this_thread::yield();
  }
  EXPECT_TRUE(d.expired());  // sticky once reached
}

TEST(DeadlineTest, FromNowMsHugeBudgetClampsToUnlimited) {
  // Regression: a budget too large for steady_clock::duration (a client
  // sending deadline_ms = 1e18) used to overflow in the duration cast and
  // wrap to an already-expired deadline — the opposite of what was asked.
  for (double ms : {1e15, 1e18, 1e300,
                    std::numeric_limits<double>::max(),
                    std::numeric_limits<double>::infinity()}) {
    Deadline d = Deadline::FromNowMs(ms);
    EXPECT_FALSE(d.expired()) << "ms=" << ms;
    EXPECT_GT(d.remaining_ms(), 1e12) << "ms=" << ms;
  }
}

TEST(DeadlineTest, FromNowMsRepresentableBudgetStaysFinite) {
  // A large-but-representable budget must not be rounded up to unlimited:
  // one year is a fine deadline.
  Deadline year = Deadline::FromNowMs(365.0 * 24 * 3600 * 1000);
  EXPECT_FALSE(year.unlimited());
  EXPECT_FALSE(year.expired());
  EXPECT_FALSE(std::isinf(year.remaining_ms()));
}

TEST(DeadlineTest, FromNowMsNaNIsExpired) {
  // NaN is not a budget; the valid-expired contract (like non-positive
  // values) beats UB in the float-to-duration cast.
  Deadline d = Deadline::FromNowMs(std::numeric_limits<double>::quiet_NaN());
  EXPECT_FALSE(d.unlimited());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, FromNowMsNegativeExtremesAreExpiredNotWrapped) {
  for (double ms : {-1e18, -std::numeric_limits<double>::infinity()}) {
    Deadline d = Deadline::FromNowMs(ms);
    EXPECT_TRUE(d.expired()) << "ms=" << ms;
    EXPECT_LE(d.remaining_ms(), 0.0) << "ms=" << ms;
  }
}

// --------------------------------------------------- CancellationToken ---

TEST(CancellationTokenTest, CopiesShareOneFlag) {
  CancellationToken a;
  CancellationToken b = a;
  EXPECT_FALSE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
  b.RequestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
}

TEST(CancellationTokenTest, IndependentTokensDontInterfere) {
  CancellationToken a;
  CancellationToken b;
  a.RequestCancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_FALSE(b.cancelled());
}

// ----------------------------------------------------------- StopToken ---

TEST(StopTokenTest, DefaultNeverStops) {
  StopToken stop;
  EXPECT_FALSE(stop.ShouldStop());
  EXPECT_FALSE(stop.cancelled());
  EXPECT_TRUE(stop.deadline().unlimited());
}

TEST(StopTokenTest, StopsOnExpiredDeadlineButIsNotCancelled) {
  StopToken stop{Deadline::Expired()};
  EXPECT_TRUE(stop.ShouldStop());
  EXPECT_FALSE(stop.cancelled());  // degrade, don't abandon
}

TEST(StopTokenTest, StopsOnCancelledToken) {
  CancellationToken token;
  StopToken stop{token};
  EXPECT_FALSE(stop.ShouldStop());
  token.RequestCancel();
  EXPECT_TRUE(stop.ShouldStop());
  EXPECT_TRUE(stop.cancelled());
}

TEST(StopTokenTest, CombinedCtorObservesBothConditions) {
  CancellationToken token;
  StopToken stop(Deadline::FromNowMs(60'000), token);
  EXPECT_FALSE(stop.ShouldStop());
  token.RequestCancel();
  EXPECT_TRUE(stop.ShouldStop());
  EXPECT_TRUE(stop.cancelled());

  StopToken expired(Deadline::Expired(), CancellationToken());
  EXPECT_TRUE(expired.ShouldStop());
  EXPECT_FALSE(expired.cancelled());
}

// ------------------------------------------------ ParallelFor + budget ---

TEST(ThreadPoolTest, ParallelForWithDefaultStopRunsEverything) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.ParallelFor(
      200, [&counter](size_t) { counter.fetch_add(1); }, StopToken()));
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ParallelForPreStoppedRunsNothing) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  EXPECT_FALSE(pool.ParallelFor(
      1000, [&counter](size_t) { counter.fetch_add(1); },
      StopToken{Deadline::Expired()}));
  // Workers observe the stop before claiming their first chunk, so no
  // index runs at all — and the call returns instead of hanging.
  EXPECT_EQ(counter.load(), 0);
}

TEST(ThreadPoolTest, ParallelForStopsMidFlightOnCancellation) {
  ThreadPool pool(2);
  CancellationToken token;
  std::atomic<int> counter{0};
  const size_t n = 100'000;
  bool complete = pool.ParallelFor(
      n, 16,
      [&](size_t begin, size_t end) {
        counter.fetch_add(static_cast<int>(end - begin));
        if (counter.load() > 256) token.RequestCancel();
      },
      StopToken{token});
  EXPECT_FALSE(complete);
  // In-flight chunks finish; everything after the cancel is skipped.
  EXPECT_LT(counter.load(), static_cast<int>(n));
}

TEST(ThreadPoolTest, ParallelForStillPropagatesExceptionsWithStop) {
  ThreadPool pool(4);
  CancellationToken token;
  EXPECT_THROW(pool.ParallelFor(
                   100,
                   [](size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   },
                   StopToken{token}),
               std::runtime_error);
  // The pool survives and later budgeted batches run normally.
  std::atomic<int> counter{0};
  EXPECT_TRUE(pool.ParallelFor(
      50, [&counter](size_t) { counter.fetch_add(1); }, StopToken{token}));
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace subdex
