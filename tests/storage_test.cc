#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "storage/csv.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace subdex {
namespace {

Schema TestSchema() {
  return Schema({{"color", AttributeType::kCategorical},
                 {"tags", AttributeType::kMultiCategorical},
                 {"price", AttributeType::kNumeric}});
}

Table MakeTable() {
  Table t(TestSchema());
  EXPECT_TRUE(t.AppendRow({std::string("red"),
                           std::vector<std::string>{"a", "b"}, 1.5})
                  .ok());
  EXPECT_TRUE(t.AppendRow({std::string("blue"),
                           std::vector<std::string>{"b"}, 2.5})
                  .ok());
  EXPECT_TRUE(t.AppendRow({std::string("red"), std::monostate{},
                           std::monostate{}})
                  .ok());
  return t;
}

// -------------------------------------------------------------- Schema ---

TEST(SchemaTest, LookupByName) {
  Schema s = TestSchema();
  EXPECT_EQ(s.num_attributes(), 3u);
  EXPECT_EQ(s.IndexOf("color"), 0);
  EXPECT_EQ(s.IndexOf("price"), 2);
  EXPECT_EQ(s.IndexOf("missing"), -1);
  EXPECT_TRUE(s.Contains("tags"));
}

TEST(SchemaTest, AttributeTypeNames) {
  EXPECT_STREQ(AttributeTypeName(AttributeType::kCategorical), "categorical");
  EXPECT_STREQ(AttributeTypeName(AttributeType::kMultiCategorical),
               "multi-categorical");
  EXPECT_STREQ(AttributeTypeName(AttributeType::kNumeric), "numeric");
}

// ---------------------------------------------------------- Dictionary ---

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  ValueCode a = d.Intern("x");
  ValueCode b = d.Intern("y");
  EXPECT_NE(a, b);
  EXPECT_EQ(d.Intern("x"), a);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.ValueOf(a), "x");
  EXPECT_EQ(d.Lookup("y"), b);
  EXPECT_EQ(d.Lookup("z"), kNullCode);
}

// --------------------------------------------------------------- Table ---

TEST(TableTest, AppendAndAccess) {
  Table t = MakeTable();
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.CodeAt(0, 0), t.CodeAt(0, 2));  // both "red"
  EXPECT_NE(t.CodeAt(0, 0), t.CodeAt(0, 1));
  EXPECT_EQ(t.MultiCodesAt(1, 0).size(), 2u);
  EXPECT_EQ(t.MultiCodesAt(1, 2).size(), 0u);  // null
  EXPECT_DOUBLE_EQ(t.NumericAt(2, 1), 2.5);
  EXPECT_TRUE(std::isnan(t.NumericAt(2, 2)));
  EXPECT_EQ(t.CodeAt(0, 2), t.LookupValue(0, "red"));
}

TEST(TableTest, HasValueSemantics) {
  Table t = MakeTable();
  ValueCode red = t.LookupValue(0, "red");
  ValueCode b = t.LookupValue(1, "b");
  EXPECT_TRUE(t.HasValue(0, 0, red));
  EXPECT_FALSE(t.HasValue(0, 1, red));
  EXPECT_TRUE(t.HasValue(1, 0, b));
  EXPECT_TRUE(t.HasValue(1, 1, b));
  EXPECT_FALSE(t.HasValue(1, 2, b));
}

TEST(TableTest, TypeMismatchIsRejectedAtomically) {
  Table t = MakeTable();
  size_t before = t.num_rows();
  Status st = t.AppendRow({3.0, std::vector<std::string>{"a"}, 1.0});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(t.num_rows(), before);
}

TEST(TableTest, WrongArityRejected) {
  Table t = MakeTable();
  EXPECT_FALSE(t.AppendRow({std::string("red")}).ok());
}

TEST(TableTest, MultiValuesDedupedAndSorted) {
  Table t(TestSchema());
  ASSERT_TRUE(t.AppendRow({std::string("red"),
                           std::vector<std::string>{"b", "a", "b"}, 1.0})
                  .ok());
  EXPECT_EQ(t.MultiCodesAt(1, 0).size(), 2u);
  EXPECT_TRUE(std::is_sorted(t.MultiCodesAt(1, 0).begin(),
                             t.MultiCodesAt(1, 0).end()));
}

TEST(TableTest, CellToString) {
  Table t = MakeTable();
  EXPECT_EQ(t.CellToString(0, 0), "red");
  EXPECT_EQ(t.CellToString(1, 0), "a|b");
  EXPECT_EQ(t.CellToString(0, 2), "red");
  EXPECT_EQ(t.CellToString(1, 2), "");
  EXPECT_EQ(t.CellToString(2, 2), "");
}

TEST(TableTest, DistinctValueCount) {
  Table t = MakeTable();
  EXPECT_EQ(t.DistinctValueCount(0), 2u);
  EXPECT_EQ(t.DistinctValueCount(1), 2u);
}

// ----------------------------------------------------------- Predicate ---

TEST(PredicateTest, EmptyMatchesEverything) {
  Table t = MakeTable();
  Predicate p;
  EXPECT_EQ(p.Select(t).size(), t.num_rows());
}

TEST(PredicateTest, SingleConjunct) {
  Table t = MakeTable();
  Predicate p({{0, t.LookupValue(0, "red")}});
  std::vector<RowId> rows = p.Select(t);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 2u);
}

TEST(PredicateTest, MultiValuedConjunct) {
  Table t = MakeTable();
  Predicate p({{1, t.LookupValue(1, "a")}});
  std::vector<RowId> rows = p.Select(t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
}

TEST(PredicateTest, ConjunctionNarrows) {
  Table t = MakeTable();
  Predicate p({{0, t.LookupValue(0, "red")}, {1, t.LookupValue(1, "b")}});
  std::vector<RowId> rows = p.Select(t);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 0u);
}

TEST(PredicateTest, WithReplacesSameAttribute) {
  Table t = MakeTable();
  ValueCode red = t.LookupValue(0, "red");
  ValueCode blue = t.LookupValue(0, "blue");
  Predicate p({{0, red}});
  Predicate q = p.With({0, blue});
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.conjuncts()[0].code, blue);
  Predicate r = p.With({1, t.LookupValue(1, "b")});
  EXPECT_EQ(r.size(), 2u);
}

TEST(PredicateTest, WithoutRemoves) {
  Table t = MakeTable();
  Predicate p({{0, t.LookupValue(0, "red")}, {1, t.LookupValue(1, "b")}});
  Predicate q = p.Without(0);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.ConstrainsAttribute(0));
  EXPECT_TRUE(q.ConstrainsAttribute(1));
  // Removing an unconstrained attribute is a no-op.
  EXPECT_EQ(q.Without(0), q);
}

TEST(PredicateTest, ContainsIsSubsetRelation) {
  Table t = MakeTable();
  Predicate big({{0, t.LookupValue(0, "red")}, {1, t.LookupValue(1, "b")}});
  Predicate small({{0, t.LookupValue(0, "red")}});
  EXPECT_TRUE(big.Contains(small));
  EXPECT_FALSE(small.Contains(big));
  EXPECT_TRUE(big.Contains(Predicate{}));
}

TEST(PredicateTest, SelectFromRespectsCandidates) {
  Table t = MakeTable();
  Predicate p({{0, t.LookupValue(0, "red")}});
  std::vector<RowId> rows = p.SelectFrom(t, {1, 2});
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], 2u);
}

TEST(PredicateTest, FromPairsValidates) {
  Table t = MakeTable();
  auto ok = Predicate::FromPairs(&t, {{"color", "red"}});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().size(), 1u);
  EXPECT_FALSE(Predicate::FromPairs(&t, {{"nope", "x"}}).ok());
  EXPECT_FALSE(Predicate::FromPairs(&t, {{"price", "1.0"}}).ok());
}

TEST(PredicateTest, ToStringIsReadable) {
  Table t = MakeTable();
  Predicate p({{0, t.LookupValue(0, "red")}});
  EXPECT_EQ(p.ToString(t), "<color=red>");
  EXPECT_EQ(Predicate{}.ToString(t), "<*>");
}

// ----------------------------------------------------------------- CSV ---

TEST(CsvTest, RoundTrip) {
  Table t = MakeTable();
  std::string path =
      (std::filesystem::temp_directory_path() / "subdex_csv_test.csv")
          .string();
  ASSERT_TRUE(WriteCsv(t, path).ok());
  auto loaded = ReadCsv(path, TestSchema());
  ASSERT_TRUE(loaded.ok());
  const Table& u = loaded.value();
  ASSERT_EQ(u.num_rows(), t.num_rows());
  for (RowId r = 0; r < t.num_rows(); ++r) {
    for (size_t a = 0; a < t.num_attributes(); ++a) {
      EXPECT_EQ(u.CellToString(a, r), t.CellToString(a, r));
    }
  }
  std::remove(path.c_str());
}

TEST(CsvTest, MissingFileFails) {
  auto r = ReadCsv("/nonexistent/definitely_missing.csv", TestSchema());
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CsvTest, HeaderMismatchFails) {
  std::string path =
      (std::filesystem::temp_directory_path() / "subdex_csv_bad.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("wrong,tags,price\nred,a,1.0\n", f);
    fclose(f);
  }
  EXPECT_FALSE(ReadCsv(path, TestSchema()).ok());
  std::remove(path.c_str());
}

TEST(CsvTest, BadNumericFails) {
  std::string path =
      (std::filesystem::temp_directory_path() / "subdex_csv_num.csv").string();
  {
    FILE* f = fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    fputs("color,tags,price\nred,a,notanumber\n", f);
    fclose(f);
  }
  EXPECT_FALSE(ReadCsv(path, TestSchema()).ok());
  std::remove(path.c_str());
}

// -------------------------------------------------------------- Status ---

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  Status s = Status::NotFound("thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_NE(s.ToString().find("thing"), std::string::npos);
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_TRUE(ok.status().ok());
  Result<int> bad(Status::InvalidArgument("nope"));
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace subdex
