// Regression tests distilled from fuzzing the parser layers (fuzz/).
// Every case here either reproduces an input class the fuzzer flagged or
// pins the Status-not-abort contract of a loader boundary: feeding hostile
// bytes into ParsePredicate / ReadCsv / ParseManifest / LoadRatingsCsv must
// come back as a Status, never a CHECK-abort.

#include <memory>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "storage/csv.h"
#include "storage/query_parser.h"
#include "storage/table.h"
#include "subjective/db_io.h"
#include "subjective/subjective_db.h"

namespace subdex {
namespace {

Table MakeQueryTable() {
  Schema schema({{"city", AttributeType::kCategorical},
                 {"cuisine", AttributeType::kMultiCategorical},
                 {"stars", AttributeType::kNumeric}});
  Table table(schema);
  EXPECT_TRUE(
      table
          .AppendRow({std::string("paris"),
                      std::vector<std::string>{"french", "bistro"}, 4.5})
          .ok());
  return table;
}

TEST(QueryParserRegressionTest, MalformedQueriesReturnStatus) {
  Table table = MakeQueryTable();
  const char* bad[] = {
      "city",                    // no '='
      "city =",                  // no value
      "= paris",                 // no attribute
      "city = paris AND",        // dangling AND
      "city = 'paris",           // unclosed quote
      "city = paris cuisine",    // missing AND
      "city = paris AND city = lyon",  // duplicate attribute
      "stars = 4.5",             // numeric attribute
      "nosuch = x",              // unknown attribute
      "city == paris",           // '=' then no value token
  };
  for (const char* query : bad) {
    Result<Predicate> r = ParsePredicate(&table, query);
    EXPECT_FALSE(r.ok()) << "accepted: " << query;
  }
}

TEST(QueryParserRegressionTest, ControlBytesReturnStatus) {
  Table table = MakeQueryTable();
  // Fuzzer-shaped inputs: NUL and control bytes must not crash the cursor.
  std::string query("city\x00=\x01paris", 12);
  Result<Predicate> r = ParsePredicate(&table, query);
  (void)r.ok();  // either outcome is fine; the contract is "no abort"
}

// Found by the round-trip fuzzer: a value containing a character outside
// the bare-word alphabet (here ')') rendered unquoted and failed to
// re-parse at that character.
TEST(QueryParserRegressionTest, RoundTripsNonWordCharacters) {
  Table table = MakeQueryTable();
  Result<Predicate> parsed = ParsePredicate(&table, "city = 'it)s here'");
  ASSERT_TRUE(parsed.ok());
  std::string rendered = PredicateToQuery(table, parsed.value());
  Result<Predicate> reparsed = ParsePredicate(&table, rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(parsed.value().conjuncts(), reparsed.value().conjuncts());
}

// Found by the round-trip fuzzer: values containing a single quote were
// always rendered with single quotes and truncated on re-parse.
TEST(QueryParserRegressionTest, RoundTripsEmbeddedSingleQuote) {
  Table table = MakeQueryTable();
  Result<Predicate> parsed = ParsePredicate(&table, "city = \"it's\"");
  ASSERT_TRUE(parsed.ok());
  std::string rendered = PredicateToQuery(table, parsed.value());
  Result<Predicate> reparsed = ParsePredicate(&table, rendered);
  ASSERT_TRUE(reparsed.ok()) << rendered;
  EXPECT_EQ(parsed.value().conjuncts(), reparsed.value().conjuncts());
}

TEST(CsvRegressionTest, MalformedStreamsReturnStatus) {
  Schema schema({{"name", AttributeType::kCategorical},
                 {"tags", AttributeType::kMultiCategorical},
                 {"score", AttributeType::kNumeric}});
  const char* bad[] = {
      "",                           // empty stream
      "wrong,header,names\n",       // header mismatch
      "name,tags\n",                // header arity mismatch
      "name,tags,score\na,b\n",     // short row
      "name,tags,score\na,b,c,d\n", // long row
      "name,tags,score\na,b,nan-ish\n",  // bad numeric
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    Result<Table> r = ReadCsv(in, schema, "<test>");
    EXPECT_FALSE(r.ok()) << "accepted: " << text;
  }
  // Empty cells are nulls, not errors.
  std::istringstream ok_in("name,tags,score\n,,\n");
  Result<Table> ok = ReadCsv(ok_in, schema, "<test>");
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().num_rows(), 1u);
}

// Found by fuzzing LoadDatabase's manifest path: out-of-range scales
// reached the SubjectiveDatabase constructor and CHECK-aborted the
// process. ParseManifest must reject them as InvalidArgument instead.
TEST(ManifestRegressionTest, OutOfRangeScaleReturnsStatus) {
  for (const char* scale_line : {"scale 1", "scale 0", "scale -3",
                                 "scale 101", "scale 100000"}) {
    std::istringstream in(std::string("subdex-db 1\n") + scale_line +
                          "\ndimensions food\n");
    Result<DbManifest> r = ParseManifest(in);
    ASSERT_FALSE(r.ok()) << scale_line;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

// Split() keeps empty fields, so doubled separators used to smuggle empty
// dimension names into the SubjectiveDatabase constructor.
TEST(ManifestRegressionTest, EmptyDimensionNameReturnsStatus) {
  std::istringstream in("subdex-db 1\nscale 5\ndimensions food  service\n");
  Result<DbManifest> r = ParseManifest(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

// Duplicate attribute names used to CHECK-abort inside Schema's
// constructor when LoadDatabase built the schemas.
TEST(ManifestRegressionTest, DuplicateAttributeReturnsStatus) {
  std::istringstream in(
      "subdex-db 1\nscale 5\ndimensions food\n"
      "reviewer_attr level categorical\nreviewer_attr level numeric\n");
  Result<DbManifest> r = ParseManifest(in);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ManifestRegressionTest, MalformedManifestsReturnStatus) {
  const char* bad[] = {
      "",                                  // empty
      "not-a-manifest\n",                  // bad magic
      "subdex-db 2\n",                     // unsupported version
      "subdex-db 1\n",                     // no dimensions
      "subdex-db 1\nscale five\ndimensions a\n",       // bad scale int
      "subdex-db 1\nscale 5\ndimensions a\nbogus x\n", // unknown key
      "subdex-db 1\nscale 5\ndimensions a\nreviewer_attr x weird\n",
      "subdex-db 1\nscale 5\ndimensions a\nreviewer_attr  categorical\n",
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    Result<DbManifest> r = ParseManifest(in);
    EXPECT_FALSE(r.ok()) << "accepted: " << text;
  }
}

TEST(ManifestRegressionTest, ParsedManifestConstructsDatabase) {
  std::istringstream in(
      "subdex-db 1\nscale 7\ndimensions food service\n"
      "reviewer_attr level categorical\nitem_attr kind multi\n");
  Result<DbManifest> r = ParseManifest(in);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const DbManifest& m = r.value();
  // The header contract: a parsed manifest always satisfies the
  // SubjectiveDatabase constructor preconditions.
  SubjectiveDatabase db(Schema(m.reviewer_attrs), Schema(m.item_attrs),
                        m.dimensions, m.scale);
  EXPECT_EQ(db.scale(), 7);
  EXPECT_EQ(db.num_dimensions(), 2u);
}

class RatingsCsvRegressionTest : public ::testing::Test {
 protected:
  std::unique_ptr<SubjectiveDatabase> MakeDb() {
    Schema reviewer_schema({{"level", AttributeType::kCategorical}});
    Schema item_schema({{"kind", AttributeType::kCategorical}});
    auto db = std::make_unique<SubjectiveDatabase>(
        reviewer_schema, item_schema,
        std::vector<std::string>{"food", "service"}, 5);
    EXPECT_TRUE(db->reviewers().AppendRow({std::string("gold")}).ok());
    EXPECT_TRUE(db->items().AppendRow({std::string("cafe")}).ok());
    return db;
  }
};

TEST_F(RatingsCsvRegressionTest, MalformedRowsReturnStatus) {
  const char* bad[] = {
      "",                                  // empty
      "reviewer,item,food,service\n0,0,3\n",        // short row
      "reviewer,item,food,service\n0,0,3,4,5\n",    // long row
      "reviewer,item,food,service\nx,0,3,4\n",      // bad reviewer id
      "reviewer,item,food,service\n-1,0,3,4\n",     // negative id
      "reviewer,item,food,service\n5,0,3,4\n",      // reviewer out of range
      "reviewer,item,food,service\n0,7,3,4\n",      // item out of range
      "reviewer,item,food,service\n0,0,nine,4\n",   // bad score
  };
  for (const char* text : bad) {
    std::unique_ptr<SubjectiveDatabase> db = MakeDb();
    std::istringstream in(text);
    Status st = LoadRatingsCsv(in, db.get());
    EXPECT_FALSE(st.ok()) << "accepted: " << text;
  }
}

TEST_F(RatingsCsvRegressionTest, ValidRowsLoad) {
  std::unique_ptr<SubjectiveDatabase> db = MakeDb();
  std::istringstream in("reviewer,item,food,service\n0,0,3,4\n\n0,0,5,1\n");
  Status st = LoadRatingsCsv(in, db.get());
  ASSERT_TRUE(st.ok()) << st.ToString();
  db->FinalizeIndexes();
  EXPECT_EQ(db->num_records(), 2u);
  EXPECT_EQ(db->score(0, 0), 3);
  EXPECT_EQ(db->score(1, 1), 1);
}

}  // namespace
}  // namespace subdex
