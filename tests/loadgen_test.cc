// Load-harness tests: the LatencyRecorder bucket ladder against a
// reference classification, the BENCH_load_trajectory.json report
// round-trip and validator, the committed schema golden
// (tests/golden/bench_load_trajectory.json — regenerate with
// SUBDEX_REGEN_GOLDEN=1 and review the diff), and the driver itself
// against both targets: in-process engine sessions and a live in-process
// subdexd over real sockets.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "loadgen/driver.h"
#include "loadgen/latency_recorder.h"
#include "loadgen/report.h"
#include "loadgen/workload.h"
#include "server/server.h"
#include "tests/test_support.h"
#include "util/check.h"
#include "util/metrics.h"
#include "util/random.h"

namespace subdex::loadgen {
namespace {

// ---------------------------------------------------------------------------
// LatencyRecorder

TEST(LatencyRecorderTest, EmptyRecorder) {
  LatencyRecorder recorder;
  EXPECT_EQ(recorder.count(), 0u);
  EXPECT_EQ(recorder.sum_ms(), 0.0);
  EXPECT_EQ(recorder.mean_ms(), 0.0);
  EXPECT_EQ(recorder.max_ms(), 0.0);
  EXPECT_TRUE(std::isnan(recorder.ValueAtQuantile(0.5)));
}

TEST(LatencyRecorderTest, BoundsAreAGeometricLadder) {
  const std::vector<double>& bounds = LatencyRecorder::Bounds();
  ASSERT_GT(bounds.size(), 100u);
  EXPECT_DOUBLE_EQ(bounds.front(), 0.05);
  EXPECT_LT(bounds.back(), 130000.0);
  EXPECT_GE(bounds.back(), 65000.0);  // covers at least ~1 minute
  const double ratio = std::exp2(1.0 / 8.0);
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_NEAR(bounds[i] / bounds[i - 1], ratio, 1e-9) << "at " << i;
  }
}

// Reference classification: value v belongs in the first bucket whose
// upper bound is >= v (HistogramQuantile's le-bound layout), values past
// the last bound in the overflow bucket. The recorder's O(1) log2 index
// must agree with this linear scan for every value.
std::vector<uint64_t> ReferenceCounts(const std::vector<double>& values) {
  const std::vector<double>& bounds = LatencyRecorder::Bounds();
  std::vector<uint64_t> counts(bounds.size() + 1, 0);
  for (double v : values) {
    if (!(v >= 0)) v = 0.0;  // the recorder clamps NaN and negatives
    size_t i = 0;
    while (i < bounds.size() && v > bounds[i]) ++i;
    ++counts[i];
  }
  return counts;
}

TEST(LatencyRecorderTest, BucketPlacementMatchesReferenceScan) {
  Rng rng(20260808);
  std::vector<double> values;
  // Log-uniform over the full ladder plus the edges that bite: exact
  // bucket bounds, just-above/just-below a bound, underflow, overflow.
  for (int i = 0; i < 4000; ++i) {
    double exponent = -5.0 + 23.0 * rng.UniformDouble();  // ~0.03 .. ~260k ms
    values.push_back(std::exp2(exponent));
  }
  const std::vector<double>& bounds = LatencyRecorder::Bounds();
  for (size_t i = 0; i < bounds.size(); i += 7) {
    values.push_back(bounds[i]);
    values.push_back(std::nextafter(bounds[i], 0.0));
    values.push_back(std::nextafter(bounds[i], 1e30));
  }
  values.insert(values.end(), {0.0, 0.01, 0.05, 1e9});

  LatencyRecorder recorder;
  double sum = 0.0, max = 0.0;
  for (double v : values) {
    recorder.Observe(v);
    sum += v;
    max = std::max(max, v);
  }
  EXPECT_EQ(recorder.count(), values.size());
  EXPECT_NEAR(recorder.sum_ms(), sum, sum * 1e-9);
  EXPECT_DOUBLE_EQ(recorder.max_ms(), max);
  EXPECT_EQ(recorder.BucketCounts(), ReferenceCounts(values));
}

TEST(LatencyRecorderTest, ClampsNegativeAndNanToZero) {
  LatencyRecorder recorder;
  recorder.Observe(-3.5);
  recorder.Observe(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(recorder.count(), 2u);
  EXPECT_EQ(recorder.max_ms(), 0.0);
  std::vector<uint64_t> counts = recorder.BucketCounts();
  EXPECT_EQ(counts[0], 2u);  // both clamped into the first bucket
}

TEST(LatencyRecorderTest, QuantileStaysWithinTheObservedBucket) {
  // One repeated value: any quantile must interpolate inside that value's
  // bucket, i.e. within one bucket ratio (~9%) of the true value.
  LatencyRecorder recorder;
  for (int i = 0; i < 100; ++i) recorder.Observe(10.0);
  const double ratio = std::exp2(1.0 / 8.0);
  for (double q : {0.5, 0.95, 0.99, 1.0}) {
    double estimate = recorder.ValueAtQuantile(q);
    EXPECT_GE(estimate, 10.0 / ratio - 1e-9) << "q=" << q;
    EXPECT_LE(estimate, 10.0 * ratio + 1e-9) << "q=" << q;
  }
  EXPECT_DOUBLE_EQ(recorder.max_ms(), 10.0);
}

TEST(LatencyRecorderTest, ConcurrentObservesLoseNothing) {
  LatencyRecorder recorder;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kPerThread; ++i) {
        recorder.Observe(0.1 * (t + 1));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(recorder.count(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(recorder.max_ms(), 0.4);
  uint64_t total = 0;
  for (uint64_t c : recorder.BucketCounts()) total += c;
  EXPECT_EQ(total, recorder.count());
}

// ---------------------------------------------------------------------------
// Report round-trip + validation

TrajectoryPoint MakeValidPoint() {
  TrajectoryPoint point;
  point.target = "engine";
  point.dataset = "Movielens(x0.05)";
  point.scale = 5000;
  point.loop = "closed";
  point.concurrency = 8;
  point.steps_per_session = 4;
  point.think_time_mean_ms = 250.0;
  point.step_deadline_ms = 150.0;
  point.repeats = 3;
  point.wall_s = 1.25;
  point.sessions_started = 8;
  point.sessions_completed = 8;
  point.steps_attempted = 32;
  point.steps_ok = 32;
  point.steps_failed = 0;
  point.degraded_fraction = 0.03125;
  point.cancelled_fraction = 0.0;
  point.latency_ms = {12.5, 31.0, 44.5, 52.0, 15.75};
  point.steps_per_s = 25.6;
  point.shed_429 = 0;
  point.shed_503 = 0;
  point.transport_errors = 0;
  point.arrivals_dropped = 0;
  point.cache = {96, 32};
  return point;
}

TrajectoryReport MakeValidReport() {
  TrajectoryReport report;
  report.seed = 42;
  report.notes = "unit fixture";
  report.points.push_back(MakeValidPoint());
  TrajectoryPoint server = MakeValidPoint();
  server.target = "server";
  server.loop = "open";
  server.concurrency = 16;
  server.arrivals_dropped = 5;
  server.shed_429 = 3;
  report.points.push_back(server);
  return report;
}

TEST(ReportTest, JsonRoundTripPreservesEveryField) {
  TrajectoryReport report = MakeValidReport();
  auto parsed = ParseReport(ReportToJson(report));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const TrajectoryReport& back = parsed.value();
  EXPECT_EQ(back.seed, report.seed);
  EXPECT_EQ(back.notes, report.notes);
  ASSERT_EQ(back.points.size(), report.points.size());
  for (size_t i = 0; i < report.points.size(); ++i) {
    const TrajectoryPoint& a = report.points[i];
    const TrajectoryPoint& b = back.points[i];
    EXPECT_EQ(b.target, a.target);
    EXPECT_EQ(b.dataset, a.dataset);
    EXPECT_EQ(b.scale, a.scale);
    EXPECT_EQ(b.loop, a.loop);
    EXPECT_EQ(b.concurrency, a.concurrency);
    EXPECT_EQ(b.steps_per_session, a.steps_per_session);
    EXPECT_DOUBLE_EQ(b.think_time_mean_ms, a.think_time_mean_ms);
    EXPECT_DOUBLE_EQ(b.step_deadline_ms, a.step_deadline_ms);
    EXPECT_EQ(b.repeats, a.repeats);
    EXPECT_DOUBLE_EQ(b.wall_s, a.wall_s);
    EXPECT_EQ(b.sessions_started, a.sessions_started);
    EXPECT_EQ(b.sessions_completed, a.sessions_completed);
    EXPECT_EQ(b.steps_attempted, a.steps_attempted);
    EXPECT_EQ(b.steps_ok, a.steps_ok);
    EXPECT_EQ(b.steps_failed, a.steps_failed);
    EXPECT_DOUBLE_EQ(b.degraded_fraction, a.degraded_fraction);
    EXPECT_DOUBLE_EQ(b.cancelled_fraction, a.cancelled_fraction);
    EXPECT_DOUBLE_EQ(b.latency_ms.p50, a.latency_ms.p50);
    EXPECT_DOUBLE_EQ(b.latency_ms.p95, a.latency_ms.p95);
    EXPECT_DOUBLE_EQ(b.latency_ms.p99, a.latency_ms.p99);
    EXPECT_DOUBLE_EQ(b.latency_ms.max, a.latency_ms.max);
    EXPECT_DOUBLE_EQ(b.latency_ms.mean, a.latency_ms.mean);
    EXPECT_DOUBLE_EQ(b.steps_per_s, a.steps_per_s);
    EXPECT_EQ(b.shed_429, a.shed_429);
    EXPECT_EQ(b.shed_503, a.shed_503);
    EXPECT_EQ(b.transport_errors, a.transport_errors);
    EXPECT_EQ(b.arrivals_dropped, a.arrivals_dropped);
    EXPECT_EQ(b.cache.hits, a.cache.hits);
    EXPECT_EQ(b.cache.misses, a.cache.misses);
  }
}

TEST(ReportTest, ParseRejectsWrongSchemaAndVersion) {
  std::string good = ReportToJson(MakeValidReport());
  EXPECT_FALSE(ParseReport("not json at all").ok());
  EXPECT_FALSE(ParseReport("[]").ok());

  std::string wrong_schema = good;
  size_t at = wrong_schema.find(kReportSchema);
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, std::string(kReportSchema).size(), "other-schema");
  EXPECT_FALSE(ParseReport(wrong_schema).ok());

  std::string wrong_version = good;
  at = wrong_version.find("\"schema_version\":1");
  ASSERT_NE(at, std::string::npos);
  wrong_version.replace(at, 18, "\"schema_version\":99");
  EXPECT_FALSE(ParseReport(wrong_version).ok());
}

TEST(ReportTest, ParseNamesTheMissingField) {
  TrajectoryReport report = MakeValidReport();
  std::string json = ReportToJson(report);
  size_t at = json.find("\"steps_ok\"");
  ASSERT_NE(at, std::string::npos);
  json.replace(at, 10, "\"steps_oops\"");
  auto parsed = ParseReport(json);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("steps_ok"), std::string::npos)
      << parsed.status().ToString();
}

TEST(ReportTest, ValidateAcceptsTheFixture) {
  TrajectoryReport report = MakeValidReport();
  EXPECT_TRUE(ValidateReport(report).ok());
  EXPECT_TRUE(ValidateReport(report, /*smoke=*/true).ok());
}

TEST(ReportTest, ValidateRejectsStructuralNonsense) {
  {
    TrajectoryReport report;  // no points
    report.seed = 1;
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    report.points[0].target = "mainframe";
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    report.points[0].loop = "sideways";
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    report.points[0].concurrency = 0;
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    report.points[0].steps_ok = report.points[0].steps_attempted + 1;
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    report.points[0].degraded_fraction = 1.5;
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    // Non-monotone quantiles: p50 above p95.
    report.points[0].latency_ms.p50 = 100.0;
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    report.points[0].latency_ms.p99 =
        -std::numeric_limits<double>::infinity();
    EXPECT_FALSE(ValidateReport(report).ok());
  }
  {
    TrajectoryReport report = MakeValidReport();
    // Steps succeeded but the latency summary claims nothing was measured.
    report.points[0].latency_ms = {};
    EXPECT_FALSE(ValidateReport(report).ok());
  }
}

TEST(ReportTest, SmokeModeIsStricter) {
  TrajectoryReport report = MakeValidReport();
  report.points[0].steps_ok = 0;
  report.points[0].steps_failed = report.points[0].steps_attempted;
  report.points[0].latency_ms = {};
  report.points[0].steps_per_s = 0.0;
  EXPECT_TRUE(ValidateReport(report).ok());
  EXPECT_FALSE(ValidateReport(report, /*smoke=*/true).ok());

  TrajectoryReport cancelled = MakeValidReport();
  cancelled.points[0].concurrency = 1;
  cancelled.points[0].cancelled_fraction = 0.5;
  EXPECT_TRUE(ValidateReport(cancelled).ok());
  EXPECT_FALSE(ValidateReport(cancelled, /*smoke=*/true).ok());
}

TEST(ReportTest, FileRoundTrip) {
  TrajectoryReport report = MakeValidReport();
  std::string path = ::testing::TempDir() + "loadgen_report_roundtrip.json";
  ASSERT_TRUE(WriteReportFile(path, report).ok());
  auto back = ReadReportFile(path);
  ASSERT_TRUE(back.ok()) << back.status().message();
  EXPECT_EQ(ReportToJson(back.value()), ReportToJson(report));
  std::remove(path.c_str());
  EXPECT_FALSE(ReadReportFile(path).ok());  // gone again
}

// ---------------------------------------------------------------------------
// Schema golden: the committed fixture pins the exact wire format. A diff
// here means the schema changed — bump kReportSchemaVersion and regenerate
// with SUBDEX_REGEN_GOLDEN=1, then review the diff.

std::string GoldenPath() {
  return std::string(SUBDEX_GOLDEN_DIR) + "/bench_load_trajectory.json";
}

TEST(ReportTest, GoldenSchemaFixture) {
  const std::string expected = ReportToJson(MakeValidReport());
  const std::string path = GoldenPath();
  if (std::getenv("SUBDEX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << path;
    out << expected;
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << path << " missing — regenerate with SUBDEX_REGEN_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), expected)
      << "BENCH_load_trajectory.json schema drifted: if intended, bump "
         "kReportSchemaVersion, rerun with SUBDEX_REGEN_GOLDEN=1 and "
         "review the diff";
  // The committed fixture must also survive the strict parser + validator.
  auto parsed = ParseReport(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_TRUE(ValidateReport(parsed.value()).ok());
}

// ---------------------------------------------------------------------------
// Driver against the in-process engine target

std::unique_ptr<SubjectiveDatabase> MakeDriverDb() {
  return testing_support::MakeRandomDb(/*num_reviewers=*/40, /*num_items=*/30,
                                       /*num_ratings=*/600,
                                       /*num_dimensions=*/2, /*seed=*/7);
}

EngineConfig DriverConfig() {
  EngineConfig config;
  config.num_threads = 1;
  config.min_group_size = 1;
  return config;
}

TEST(DriverTest, EngineTargetClosedLoopCompletesEverySession) {
  std::unique_ptr<SubjectiveDatabase> db = MakeDriverDb();
  EngineLoadTarget target(db.get(), DriverConfig(), /*step_deadline_ms=*/0,
                          /*with_recommendations=*/true);
  WorkloadSpec spec;
  spec.mode = LoopMode::kClosed;
  spec.sessions = 4;
  spec.steps_per_session = 3;
  spec.seed = 11;
  LoadRunResult result = RunWorkload(target, spec);
  EXPECT_EQ(result.sessions_started, 4u);
  EXPECT_EQ(result.sessions_completed, 4u);
  EXPECT_EQ(result.steps_attempted, 12u);
  EXPECT_EQ(result.steps_ok, 12u);
  EXPECT_EQ(result.steps_failed, 0u);
  EXPECT_EQ(result.shed_429, 0u);
  EXPECT_EQ(result.transport_errors, 0u);
  ASSERT_NE(result.latency, nullptr);
  EXPECT_EQ(result.latency->count(), 12u);
  EXPECT_GT(result.latency->max_ms(), 0.0);
  EXPECT_GT(result.wall_s, 0.0);
  EXPECT_GT(result.steps_per_s(), 0.0);
#if SUBDEX_METRICS_ENABLED
  EXPECT_EQ(result.counters.engine_steps_total, 12u);
#endif
}

TEST(DriverTest, ClosedLoopScriptsAreSeedDeterministic) {
  std::unique_ptr<SubjectiveDatabase> db = MakeDriverDb();
  EngineLoadTarget target(db.get(), DriverConfig(), 0, true);
  WorkloadSpec spec;
  spec.sessions = 3;
  spec.steps_per_session = 4;
  spec.think_time_mean_ms = 1.0;  // exercises the think-time draw path
  spec.seed = 99;
  spec.record_actions = true;

  LoadRunResult first = RunWorkload(target, spec);
  LoadRunResult second = RunWorkload(target, spec);
  ASSERT_EQ(first.session_scripts.size(), 3u);
  for (const std::string& script : first.session_scripts) {
    EXPECT_FALSE(script.empty());
  }
  EXPECT_EQ(first.session_scripts, second.session_scripts);

  spec.seed = 100;
  LoadRunResult other = RunWorkload(target, spec);
  EXPECT_NE(first.session_scripts, other.session_scripts);
}

TEST(DriverTest, SetMeasurementsCopiesARunIntoAPoint) {
  std::unique_ptr<SubjectiveDatabase> db = MakeDriverDb();
  EngineLoadTarget target(db.get(), DriverConfig(), 0, true);
  WorkloadSpec spec;
  spec.sessions = 2;
  spec.steps_per_session = 2;
  spec.seed = 5;
  LoadRunResult run = RunWorkload(target, spec);

  TrajectoryPoint point;
  point.target = "engine";
  point.dataset = "random";
  point.scale = 600;
  point.loop = "closed";
  point.concurrency = spec.sessions;
  point.steps_per_session = spec.steps_per_session;
  SetMeasurements(&point, run);
  EXPECT_EQ(point.steps_attempted, run.steps_attempted);
  EXPECT_EQ(point.steps_ok, run.steps_ok);
  EXPECT_GT(point.latency_ms.p50, 0.0);
  EXPECT_GT(point.latency_ms.max, 0.0);
  EXPECT_GE(point.latency_ms.p99, point.latency_ms.p50);
  TrajectoryReport report;
  report.seed = spec.seed;
  report.points.push_back(point);
  EXPECT_TRUE(ValidateReport(report, /*smoke=*/true).ok())
      << ValidateReport(report, true).ToString();
}

TEST(DriverTest, OpenLoopRunsAndCountsArrivals) {
  std::unique_ptr<SubjectiveDatabase> db = MakeDriverDb();
  EngineLoadTarget target(db.get(), DriverConfig(), 0, true);
  WorkloadSpec spec;
  spec.mode = LoopMode::kOpen;
  spec.sessions = 2;  // worker slots
  spec.steps_per_session = 2;
  spec.arrivals_per_s = 200.0;
  spec.arrival_window_s = 0.1;
  spec.seed = 21;
  LoadRunResult result = RunWorkload(target, spec);
  EXPECT_GE(result.sessions_started, 1u);
  EXPECT_GE(result.steps_ok, 1u);
  EXPECT_EQ(result.steps_failed, 0u);
  // Admitted sessions run to completion against the engine target, so the
  // books close exactly: every admitted session attempted every step.
  EXPECT_EQ(result.sessions_completed, result.sessions_started);
  EXPECT_EQ(result.steps_attempted,
            result.sessions_started * spec.steps_per_session);
}

// ---------------------------------------------------------------------------
// Driver against a live in-process subdexd over real sockets

class DriverHttpTest : public ::testing::Test {
 protected:
  DriverHttpTest() : server_(MakeOptions()) {
    SUBDEX_CHECK_OK(
        server_.RegisterDataset("tiny", testing_support::MakeTinyRestaurantDb()));
    SUBDEX_CHECK_OK(server_.Start());
  }

  static SubdexServer::Options MakeOptions() {
    SubdexServer::Options options;
    options.http.num_workers = 8;
    options.http.queue_capacity = 128;
    options.sessions.max_sessions = 64;
    options.engine.min_group_size = 1;
    return options;
  }

  SubdexServer server_;
};

TEST_F(DriverHttpTest, ServerTargetClosedLoopCompletesEverySession) {
  HttpClientOptions client;
  client.port = server_.port();
  HttpLoadTarget target(client, "tiny", /*step_deadline_ms=*/0,
                        /*with_recommendations=*/true);
  WorkloadSpec spec;
  spec.sessions = 8;
  spec.steps_per_session = 3;
  spec.seed = 17;
  LoadRunResult result = RunWorkload(target, spec);
  EXPECT_EQ(result.sessions_started, 8u);
  EXPECT_EQ(result.sessions_completed, 8u);
  EXPECT_EQ(result.steps_attempted, 24u);
  EXPECT_EQ(result.steps_ok, 24u) << "failed=" << result.steps_failed
                                  << " transport=" << result.transport_errors
                                  << " shed429=" << result.shed_429;
  ASSERT_NE(result.latency, nullptr);
  EXPECT_EQ(result.latency->count(), 24u);
#if SUBDEX_METRICS_ENABLED
  // /metrics scraping saw the engine work this run generated.
  EXPECT_GE(result.counters.engine_steps_total, 24u);
#endif
}

TEST_F(DriverHttpTest, SessionCapShedsAreCountedNotFatal) {
  HttpClientOptions client;
  client.port = server_.port();
  HttpLoadTarget target(client, "tiny", 0, true);
  WorkloadSpec spec;
  // 80 concurrent sessions against a 64-session cap: some creates answer
  // 429; bounded retries mean most sessions still complete.
  spec.sessions = 80;
  spec.steps_per_session = 2;
  spec.seed = 23;
  LoadRunResult result = RunWorkload(target, spec);
  EXPECT_EQ(result.sessions_started, 80u);
  EXPECT_GE(result.sessions_completed, 1u);
  EXPECT_EQ(result.transport_errors, 0u);
  // Accounting stays closed: every attempted step resolved one way.
  EXPECT_LE(result.steps_ok + result.steps_failed, result.steps_attempted);
}

}  // namespace
}  // namespace subdex::loadgen
