// The wire-number funnel (src/server/json_wire.h): every number a client
// can put on the wire must die at these functions or arrive bounded.
// subdex-lint rule L3 guarantees server code cannot bypass the funnel;
// this test pins what the funnel itself accepts and rejects.

#include "server/json_wire.h"

#include <cmath>
#include <limits>

#include "gtest/gtest.h"
#include "server/json.h"

namespace subdex {
namespace {

JsonValue Obj(const char* key, JsonValue v) {
  JsonValue obj = JsonValue::Object();
  obj.Set(key, std::move(v));
  return obj;
}

TEST(WireNumber, AcceptsFiniteRejectsNonNumbersAndNonFinite) {
  EXPECT_EQ(WireNumber(JsonValue::Number(2.5), "x").value(), 2.5);
  EXPECT_EQ(WireNumber(JsonValue::Number(-7), "x").value(), -7.0);
  EXPECT_FALSE(WireNumber(JsonValue::Str("2.5"), "x").ok());
  EXPECT_FALSE(WireNumber(JsonValue::Bool(true), "x").ok());
  EXPECT_FALSE(
      WireNumber(JsonValue::Number(std::numeric_limits<double>::infinity()),
                 "x")
          .ok());
  EXPECT_FALSE(
      WireNumber(JsonValue::Number(std::nan("")), "x").ok());
}

TEST(WireNumber, ErrorNamesTheField) {
  const Result<double> r = WireNumber(JsonValue::Str("no"), "ttl_ms");
  EXPECT_NE(r.status().message().find("ttl_ms"), std::string::npos);
}

TEST(WireIndex, AcceptsSmallIntegersOnly) {
  EXPECT_EQ(WireIndex(JsonValue::Number(0), "i").value(), 0u);
  EXPECT_EQ(WireIndex(JsonValue::Number(41), "i").value(), 41u);
  EXPECT_FALSE(WireIndex(JsonValue::Number(-1), "i").ok());
  EXPECT_FALSE(WireIndex(JsonValue::Number(1.5), "i").ok());
  // The remote-allocation primitive: a huge count must be rejected, not
  // handed to a resize.
  EXPECT_FALSE(WireIndex(JsonValue::Number(1e300), "i").ok());
  EXPECT_FALSE(WireIndex(JsonValue::Number(kWireMaxCount * 2), "i").ok());
  EXPECT_EQ(WireIndex(JsonValue::Number(kWireMaxCount), "i").value(),
            static_cast<size_t>(kWireMaxCount));
}

TEST(WireCountField, AbsentKeyLeavesDefaultUntouched) {
  size_t out = 99;
  EXPECT_TRUE(WireCountField(JsonValue::Object(), "k", &out).ok());
  EXPECT_EQ(out, 99u);
}

TEST(WireCountField, PresentKeyMustBeAValidIndex) {
  size_t out = 0;
  EXPECT_TRUE(WireCountField(Obj("k", JsonValue::Number(7)), "k", &out).ok());
  EXPECT_EQ(out, 7u);
  out = 99;
  EXPECT_FALSE(
      WireCountField(Obj("k", JsonValue::Number(-3)), "k", &out).ok());
  EXPECT_EQ(out, 99u) << "a rejected field must not half-write the output";
  EXPECT_FALSE(
      WireCountField(Obj("k", JsonValue::Str("7")), "k", &out).ok());
}

TEST(WireMsField, NonNegativeByDefaultPositiveOnRequest) {
  double out = -1;
  EXPECT_TRUE(WireMsField(Obj("t", JsonValue::Number(0)), "t", &out).ok());
  EXPECT_EQ(out, 0.0);
  EXPECT_FALSE(
      WireMsField(Obj("t", JsonValue::Number(-5)), "t", &out).ok());
  EXPECT_FALSE(WireMsField(Obj("t", JsonValue::Number(0)), "t", &out,
                           WireSign::kPositive)
                   .ok());
  EXPECT_TRUE(WireMsField(Obj("t", JsonValue::Number(0.5)), "t", &out,
                          WireSign::kPositive)
                  .ok());
  EXPECT_EQ(out, 0.5);
}

TEST(WireMsField, AbsentLeavesDefaultAndNonFiniteRejected) {
  double out = 42;
  EXPECT_TRUE(WireMsField(JsonValue::Object(), "t", &out).ok());
  EXPECT_EQ(out, 42.0);
  EXPECT_FALSE(
      WireMsField(
          Obj("t",
              JsonValue::Number(std::numeric_limits<double>::infinity())),
          "t", &out)
          .ok());
  EXPECT_EQ(out, 42.0);
}

}  // namespace
}  // namespace subdex
