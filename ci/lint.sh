#!/usr/bin/env bash
# Grep-level lint for src/: cheap textual rules that need no compiler.
#
#   1. No raw operator new/delete — ownership goes through containers and
#      smart pointers (deleted special members, `= delete`, are fine).
#   2. No C assert() — invariants use SUBDEX_CHECK / SUBDEX_DCHECK so they
#      are formatted, and policy-controlled (static_assert is fine).
#   3. Every header carries a SUBDEX_ include guard near the top.
#
# Run from anywhere; ci/check.sh runs this first (it is the fastest gate).
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

fail=0

# Rule 1: raw allocation expressions. Anchor on the contexts where an
# operator-new expression can appear so prose in comments ("a new table")
# stays unflagged.
hits=$(grep -rnE '([=(,]|return)[[:space:]]*new[[:space:]]+[A-Za-z_]' \
         src --include='*.cc' --include='*.h' || true)
if [[ -n "$hits" ]]; then
  echo "lint: raw 'new' expression (use containers / make_unique):" >&2
  echo "$hits" >&2
  fail=1
fi
hits=$(grep -rnE '\bdelete(\[\])?[[:space:]]+[A-Za-z_*(]' \
         src --include='*.cc' --include='*.h' | grep -vE '=[[:space:]]*delete' || true)
if [[ -n "$hits" ]]; then
  echo "lint: raw 'delete' expression:" >&2
  echo "$hits" >&2
  fail=1
fi

# Rule 2: C assert. static_assert and *_assert identifiers are allowed.
hits=$(grep -rnE '(^|[^_[:alnum:]])assert\(' \
         src --include='*.cc' --include='*.h' || true)
if [[ -n "$hits" ]]; then
  echo "lint: C assert() (use SUBDEX_CHECK / SUBDEX_DCHECK):" >&2
  echo "$hits" >&2
  fail=1
fi

# Rule 3: include guards.
while IFS= read -r header; do
  if ! head -5 "$header" | grep -q '#ifndef SUBDEX_'; then
    echo "lint: missing SUBDEX_ include guard: $header" >&2
    fail=1
  fi
done < <(find src -name '*.h')

if [[ "$fail" -ne 0 ]]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
