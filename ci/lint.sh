#!/usr/bin/env bash
# Lint for src/: textual rules plus one cheap compile pass.
#
#   1. No raw operator new/delete — ownership goes through containers and
#      smart pointers (deleted special members, `= delete`, are fine).
#   2. No C assert() — invariants use SUBDEX_CHECK / SUBDEX_DCHECK so they
#      are formatted, and policy-controlled (static_assert is fine).
#   3. Every header carries a SUBDEX_ include guard near the top.
#   4. No unjustified discards: a `(void)expr;` statement must carry a
#      written justification comment on the same line or within the three
#      lines above it (the nodiscard contract in util/status.h makes a
#      bare discard a swallowed error).
#   5. Metric names follow `subdex_<subsystem>_<name>` (DESIGN.md §9), so
#      dashboards can group series by subsystem prefix.
#   6. Analyzer suppressions (ci/analyzer_suppressions.txt) each carry a
#      justification comment directly above the entry.
#   7. Includes hygiene: every header in src/ is self-sufficient — a TU
#      holding only `#include "<header>"` compiles standalone.
#   8. No raw std synchronization primitives (std::mutex, std::lock_guard,
#      std::unique_lock, std::scoped_lock, ...) outside src/util/mutex.h —
#      subdex::Mutex/MutexLock carry the thread-safety annotations and the
#      deadlock-detector hooks; a raw primitive bypasses both. The deeper
#      concurrency rules (named construction, no blocking syscalls under a
#      lock, looped cv waits) live in ci/concurrency_lint.sh.
#
# Run from anywhere; ci/check.sh runs this first (it is the fastest gate).
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Shared patterns (raw std primitives / raw waits) + their self-probe.
. ci/lint_lib.sh

fail=0

# Rule 1: raw allocation expressions. Anchor on the contexts where an
# operator-new expression can appear so prose in comments ("a new table")
# stays unflagged.
hits=$(grep -rnE '([=(,]|return)[[:space:]]*new[[:space:]]+[A-Za-z_]' \
         src --include='*.cc' --include='*.h' || true)
if [[ -n "$hits" ]]; then
  echo "lint: raw 'new' expression (use containers / make_unique):" >&2
  echo "$hits" >&2
  fail=1
fi
hits=$(grep -rnE '\bdelete(\[\])?[[:space:]]+[A-Za-z_*(]' \
         src --include='*.cc' --include='*.h' | grep -vE '=[[:space:]]*delete' || true)
if [[ -n "$hits" ]]; then
  echo "lint: raw 'delete' expression:" >&2
  echo "$hits" >&2
  fail=1
fi

# Rule 2: C assert. static_assert and *_assert identifiers are allowed.
hits=$(grep -rnE '(^|[^_[:alnum:]])assert\(' \
         src --include='*.cc' --include='*.h' || true)
if [[ -n "$hits" ]]; then
  echo "lint: C assert() (use SUBDEX_CHECK / SUBDEX_DCHECK):" >&2
  echo "$hits" >&2
  fail=1
fi

# Rule 3: include guards.
while IFS= read -r header; do
  if ! head -5 "$header" | grep -q '#ifndef SUBDEX_'; then
    echo "lint: missing SUBDEX_ include guard: $header" >&2
    fail=1
  fi
done < <(find src -name '*.h')

# Rule 4: (void)-discards need a justification comment nearby. Statement-
# position discards only; `if (false) { (void)(x); }` macro plumbing in
# check.h is matched too and is justified by its comment block.
while IFS= read -r hit; do
  file="${hit%%:*}"
  line="${hit#*:}"; line="${line%%:*}"
  text="${hit#*:*:}"
  if [[ "$text" == *'//'* ]]; then continue; fi
  start=$(( line > 3 ? line - 3 : 1 ))
  if sed -n "${start},$((line - 1))p" "$file" | grep -q '//'; then
    continue
  fi
  echo "lint: unjustified (void) discard (add a comment saying why):" >&2
  echo "  $hit" >&2
  fail=1
done < <(grep -rnE '\(void\)\s*\(?[A-Za-z_]' src --include='*.cc' --include='*.h' || true)

# Rule 5: metric names. Every registered name is `subdex_` + subsystem +
# at least one more word, all lowercase/digits/underscores.
hits=$(grep -rnoE 'Get(Counter|Gauge|Histogram)\(\s*"[^"]+"' \
         src --include='*.cc' --include='*.h' \
       | grep -vE '"subdex_[a-z0-9]+(_[a-z0-9]+)+"' || true)
if [[ -n "$hits" ]]; then
  echo "lint: metric name must match subdex_<subsystem>_<name>:" >&2
  echo "$hits" >&2
  fail=1
fi

# Rule 6: every active analyzer suppression has a justification comment
# directly above it (the empty-or-justified policy of ci/analyze.sh).
SUPP="ci/analyzer_suppressions.txt"
if [[ -f "$SUPP" ]]; then
  prev=""
  while IFS= read -r line; do
    if [[ "$line" =~ ^[[:space:]]*$ || "$line" =~ ^[[:space:]]*# ]]; then
      prev="$line"
      continue
    fi
    if [[ ! "$prev" =~ ^[[:space:]]*# ]]; then
      echo "lint: analyzer suppression without a justification comment" \
           "directly above it: $line" >&2
      fail=1
    fi
    prev="$line"
  done < "$SUPP"
fi

# Rule 7: header self-sufficiency. Generate `#include "<h>"` TUs and
# syntax-check them; a header that leans on its includer's includes fails.
CXX="${CXX:-c++}"
hygiene_dir="$(mktemp -d)"
trap 'rm -rf "$hygiene_dir"' EXIT
while IFS= read -r header; do
  rel="${header#src/}"
  tu="$hygiene_dir/$(echo "$rel" | tr / _).cc"
  printf '#include "%s"\n' "$rel" > "$tu"
done < <(find src -name '*.h')
if ! find "$hygiene_dir" -name '*.cc' -print0 \
   | xargs -0 -P "$(nproc)" -I{} "$CXX" -std=c++20 -I src -fsyntax-only \
       -Wall -Wextra {} 2> "$hygiene_dir/errors.log"; then
  echo "lint: header not self-sufficient (compile each src/**/*.h" \
       "standalone):" >&2
  cat "$hygiene_dir/errors.log" >&2
  fail=1
fi

# Rule 8: raw std synchronization primitives (the shared
# SUBDEX_RAW_PRIMITIVE_RE from ci/lint_lib.sh — ci/concurrency_lint.sh C1
# enforces the same pattern plus raw waits). Only src/util/mutex.h may
# name them; everything else goes through subdex::Mutex / MutexLock so the
# annotations and detector hooks can't be bypassed. Comments are stripped
# first (thread_annotations.h and lock_graph.h discuss std::mutex in
# prose, legitimately).
while IFS= read -r src_file; do
  [[ "$src_file" == "src/util/mutex.h" ]] && continue
  hits=$(sed 's@//.*@@' "$src_file" \
         | grep -nE "$SUBDEX_RAW_PRIMITIVE_RE" \
         || true)
  if [[ -n "$hits" ]]; then
    echo "lint: raw std synchronization primitive outside src/util/mutex.h" \
         "(use subdex::Mutex / MutexLock): $src_file" >&2
    echo "$hits" >&2
    fail=1
  fi
done < <(find src -name '*.cc' -o -name '*.h')

if [[ "$fail" -ne 0 ]]; then
  echo "lint: FAILED" >&2
  exit 1
fi
echo "lint: OK"
