#!/usr/bin/env bash
# Load-harness smoke test (~15 s): proves the measuring instrument itself
# works before anyone trusts a BENCH_load_trajectory.json it produced.
#
#   1. In-process sweep — subdex-loadgen drives both targets (engine
#      sessions and an in-process subdexd over real sockets) through a
#      2-concurrency closed-loop cell at a tiny dataset scale.
#   2. Live-daemon run — boots the real subdexd binary on an ephemeral
#      port and drives 32 concurrent sessions against it over HTTP.
#
# Every report must pass `subdex-loadgen --validate=FILE --smoke`: strict
# schema parse plus the smoke invariants (every point accepted steps;
# closed-loop concurrency-1 cancelled nothing). The seed is fixed and
# logged so a failing run can be replayed bit-for-bit.
#
# Usage: ci/bench_smoke.sh
#   SUBDEX_BENCH_BUILD_DIR  reuse an existing build tree (ci/check.sh
#                           passes its stage-4 tree); default build-bench.
#   SUBDEX_BENCH_SEED       override the workload seed (default 42).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${SUBDEX_BENCH_BUILD_DIR:-$ROOT/build-bench}"
SEED="${SUBDEX_BENCH_SEED:-42}"
JOBS="$(nproc)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target subdex-loadgen subdexd
LOADGEN="$BUILD/bench/subdex-loadgen"
DAEMON="$BUILD/examples/subdexd"
for bin in "$LOADGEN" "$DAEMON"; do
  if [[ ! -x "$bin" ]]; then
    echo "ERROR: expected binary is missing: $bin" >&2
    exit 1
  fi
done

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "bench_smoke: FAIL: $*" >&2
  exit 1
}

echo "bench_smoke: seed=$SEED (replay any failure with this seed)"

echo "bench_smoke: [1/2] in-process sweep (engine + in-process server)"
"$LOADGEN" --mode=both --dataset=movielens --scales=0.02 \
  --concurrency=1,4 --steps=3 --seed="$SEED" \
  --out="$WORK/inprocess.json" || fail "in-process sweep exited non-zero"
"$LOADGEN" --validate="$WORK/inprocess.json" --smoke ||
  fail "in-process report failed smoke validation"

echo "bench_smoke: [2/2] 32 concurrent sessions against live subdexd"
"$DAEMON" --port=0 --dataset=movielens:0.02 --workers=8 --queue=128 \
  --ttl-ms=60000 >"$WORK/out" 2>"$WORK/err" &
DAEMON_PID=$!
for _ in $(seq 1 150); do
  grep -q "listening on" "$WORK/out" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.2
done
grep -q "listening on" "$WORK/out" || fail "daemon never became ready"
PORT="$(sed -n 's#.*http://[^:]*:\([0-9][0-9]*\).*#\1#p' "$WORK/out")"
[[ -n "$PORT" ]] || fail "could not parse port from readiness line"
echo "bench_smoke: daemon ready on port $PORT"

# --scales only feeds the engine target's local datasets, unused when
# connecting out; the small value skips pointless dataset generation.
"$LOADGEN" --mode=server --connect="127.0.0.1:$PORT" --scales=0.02 \
  --concurrency=32 --steps=3 --seed="$SEED" \
  --out="$WORK/daemon.json" || fail "live-daemon run exited non-zero"
"$LOADGEN" --validate="$WORK/daemon.json" --smoke ||
  fail "live-daemon report failed smoke validation"

kill -TERM "$DAEMON_PID"
EXIT_CODE=0
wait "$DAEMON_PID" || EXIT_CODE=$?
DAEMON_PID=""
[[ "$EXIT_CODE" == "0" ]] || fail "daemon SIGTERM exit code was $EXIT_CODE"

echo "bench_smoke: OK"
