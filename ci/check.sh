#!/usr/bin/env bash
# Single-entry correctness gate. Runs, in order:
#
#   1. ci/lint.sh                 — textual rules (no raw new/delete, no
#                                   assert(), include guards, justified
#                                   discards, metric-name pattern, no raw
#                                   std::mutex outside util/mutex.h) plus
#                                   the header self-sufficiency compile
#   2. ci/concurrency_lint.sh     — the lock-discipline lint pack: raw
#                                   primitives/waits, unnamed Mutexes,
#                                   blocking syscalls under a lock in
#                                   src/server/, unlooped cv waits; ends
#                                   with a seeded-violation self-test
#   3. ci/subdex_lint.sh          — the project analyzer (tools/subdex-lint,
#                                   DESIGN.md §15): C1–C4 consolidated at
#                                   token level plus L1 subsystem layering
#                                   vs ci/layers.txt, L2 deadline/stop
#                                   propagation, L3 wire-number funneling,
#                                   L4 discard/metric-name shape; fixture
#                                   negative probes and the inverted-edge
#                                   layers self-test run first, the AST
#                                   engine (clang libTooling) when built
#   4. ci/analyze.sh              — whole-program static analysis (Clang
#                                   Static Analyzer when installed, GCC
#                                   -fanalyzer otherwise) with an
#                                   empty-or-justified suppression file
#   5. -Werror build + tests      — SUBDEX_WERROR=ON, SUBDEX_FUZZ=ON, plus
#                                   SUBDEX_TIDY=ON when clang-tidy exists;
#                                   also proves the [[nodiscard]] contract
#                                   via the configure-time negative
#                                   compile probe in tests/CMakeLists.txt
#   6. clang thread-safety gate   — rebuild with clang++ -Wthread-safety
#                                   (the annotations are no-ops under GCC),
#                                   when clang++ exists
#   7. deadlock-detector suite    — SUBDEX_DEADLOCK_DETECTOR=ON build: the
#                                   full ctest suite with every Mutex
#                                   acquisition routed through the
#                                   util/lock_graph.h lock-order detector;
#                                   any rank inversion, same-name nesting,
#                                   or acquired-after cycle aborts a test
#   8. fuzz smoke                 — corpus replay plus a bounded mutation
#                                   run per harness (SUBDEX_FUZZ_RUNS,
#                                   default 20000)
#   9. fault injection under ASan — SUBDEX_FAULT_INJECTION=ON build; the
#                                   fault-sweep test arms every registered
#                                   fault point in turn and asserts the
#                                   engine's invariants survive
#  10. UBSan matrix               — ci/sanitize.sh undefined: the full
#                                   ctest suite and the fuzz-corpus replay
#                                   with every UB class fatal
#  11. coverage gate              — ci/coverage.sh: instrumented build,
#                                   gcov line coverage of src/core +
#                                   src/pruning against a floor
#  12. serving smoke              — ci/serve_smoke.sh: boots subdexd on a
#                                   synthetic MovieLens dataset, drives a
#                                   scripted 3-step session over HTTP,
#                                   scrapes /metrics and /healthz, and
#                                   asserts a clean SIGTERM shutdown
#  13. crash-safety smoke         — ci/crash_smoke.sh: kill-loop chaos
#                                   harness; subdexd with --journal-dir is
#                                   SIGKILLed at randomized moments and
#                                   every restart must recover sessions
#                                   with acked digests intact, zero
#                                   divergence, and torn tails truncated
#  14. load-harness smoke         — ci/bench_smoke.sh: subdex-loadgen
#                                   sweeps both targets in-process, then
#                                   drives 32 concurrent sessions against
#                                   a live subdexd; every report must pass
#                                   --validate --smoke (seed logged)
#
# Clang-only gates degrade to a loud SKIP instead of failing when the
# toolchain is GCC-only, so the script is green on any supported image
# while still enforcing everything the installed tools can check.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BUILD="${SUBDEX_CHECK_BUILD_DIR:-build-check}"
FUZZ_RUNS="${SUBDEX_FUZZ_RUNS:-20000}"
JOBS="$(nproc)"

echo "==> [1/14] lint"
ci/lint.sh

echo "==> [2/14] concurrency lint pack"
ci/concurrency_lint.sh

echo "==> [3/14] subdex-lint (project analyzer)"
ci/subdex_lint.sh

echo "==> [4/14] static analysis"
ci/analyze.sh

echo "==> [5/14] -Werror build + tests"
TIDY=OFF
if command -v clang-tidy >/dev/null 2>&1; then
  TIDY=ON
else
  echo "SKIP: clang-tidy not installed; building without SUBDEX_TIDY"
fi
# SUBDEX_FORCE_DCHECK arms the debug invariant layer even though the
# default build type defines NDEBUG, so the test suite actually executes
# every SUBDEX_DCHECK site instead of compiling them out.
cmake -B "$BUILD" -S "$ROOT" \
  -DSUBDEX_WERROR=ON \
  -DSUBDEX_FUZZ=ON \
  -DSUBDEX_TIDY="$TIDY" \
  -DCMAKE_CXX_FLAGS="-DSUBDEX_FORCE_DCHECK=1"
cmake --build "$BUILD" -j"$JOBS"
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"

echo "==> [6/14] clang thread-safety analysis"
if command -v clang++ >/dev/null 2>&1; then
  TS_BUILD="$BUILD-threadsafety"
  cmake -B "$TS_BUILD" -S "$ROOT" \
    -DCMAKE_CXX_COMPILER=clang++ \
    -DSUBDEX_WERROR=ON
  # -Wthread-safety is added automatically for clang; -Werror promotes any
  # lock-discipline violation to a build break.
  cmake --build "$TS_BUILD" -j"$JOBS"
else
  echo "SKIP: clang++ not installed; thread-safety annotations not checked"
fi

echo "==> [7/14] deadlock-detector-armed suite"
# Every subdex::Mutex acquisition runs the util/lock_graph.h hooks; the
# full test suite (including the 64-session server storm) must stay
# silent: zero rank inversions, zero same-name nestings, zero cycles.
# SUBDEX_FORCE_DCHECK arms the invariant layer alongside, as in stage 5.
DETECTOR_BUILD="$BUILD-detector"
cmake -B "$DETECTOR_BUILD" -S "$ROOT" \
  -DSUBDEX_DEADLOCK_DETECTOR=ON \
  -DSUBDEX_WERROR=ON \
  -DCMAKE_CXX_FLAGS="-DSUBDEX_FORCE_DCHECK=1"
cmake --build "$DETECTOR_BUILD" -j"$JOBS"
ctest --test-dir "$DETECTOR_BUILD" --output-on-failure -j"$JOBS"

echo "==> [8/14] fuzz smoke ($FUZZ_RUNS runs per harness)"
for harness in fuzz_query_parser fuzz_csv_loader fuzz_db_io; do
  corpus="$ROOT/fuzz/corpus/${harness#fuzz_}"
  bin="$BUILD/fuzz/$harness"
  if [[ ! -x "$bin" ]]; then
    echo "ERROR: expected fuzz binary is missing: $bin" >&2
    exit 1
  fi
  echo "--- $harness"
  # Flag spelling works for both drivers: the standalone replay driver and
  # libFuzzer each accept --runs/--seed and positional corpus directories.
  "$bin" --runs="$FUZZ_RUNS" --seed=1 "$corpus"
done

echo "==> [9/14] fault injection under ASan"
FAULT_BUILD="$BUILD-fault"
cmake -B "$FAULT_BUILD" -S "$ROOT" \
  -DSUBDEX_FAULT_INJECTION=ON \
  -DSUBDEX_SANITIZE=address \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$FAULT_BUILD" -j"$JOBS" \
  --target fault_injection_test engine_robustness_test
for t in fault_injection_test engine_robustness_test; do
  bin="$FAULT_BUILD/tests/$t"
  if [[ ! -x "$bin" ]]; then
    echo "ERROR: expected test binary is missing: $bin" >&2
    exit 1
  fi
  echo "--- $t (fault injection, ASan)"
  "$bin"
done

echo "==> [10/14] UBSan matrix (full suite + corpus replay)"
ci/sanitize.sh undefined

echo "==> [11/14] coverage gate"
SUBDEX_COVERAGE_BUILD_DIR="$BUILD-coverage" ci/coverage.sh

echo "==> [12/14] serving smoke (subdexd end-to-end)"
SUBDEX_SMOKE_BUILD_DIR="$BUILD" ci/serve_smoke.sh

echo "==> [13/14] crash-safety smoke (kill-loop journal recovery)"
SUBDEX_CRASH_BUILD_DIR="$BUILD-crash" ci/crash_smoke.sh

echo "==> [14/14] load-harness smoke (subdex-loadgen vs live subdexd)"
SUBDEX_BENCH_BUILD_DIR="$BUILD" ci/bench_smoke.sh

echo "check: OK"
