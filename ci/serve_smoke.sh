#!/usr/bin/env bash
# Serving smoke test: boots subdexd against a synthetic MovieLens dataset
# and drives one complete client interaction over real HTTP —
#
#   /healthz, session create, a scripted 3-step exploration (empty
#   selection, recommendation follow, deadline-degraded step), a
#   /metrics scrape that must reflect the steps, session delete, a 404
#   probe — then SIGTERM and asserts a clean exit 0.
#
# Usage: ci/serve_smoke.sh
#   SUBDEX_SMOKE_BUILD_DIR  reuse an existing build tree (ci/check.sh
#                           passes its stage-3 tree); default build-smoke.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${SUBDEX_SMOKE_BUILD_DIR:-$ROOT/build-smoke}"
JOBS="$(nproc)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target subdexd
BIN="$BUILD/examples/subdexd"
if [[ ! -x "$BIN" ]]; then
  echo "ERROR: subdexd binary is missing: $BIN" >&2
  exit 1
fi

WORK="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() {
  echo "serve_smoke: FAIL: $*" >&2
  echo "--- daemon stdout ---" >&2
  cat "$WORK/out" >&2 || true
  echo "--- daemon stderr ---" >&2
  cat "$WORK/err" >&2 || true
  exit 1
}

"$BIN" --port=0 --dataset=movielens:0.02 --ttl-ms=60000 \
  >"$WORK/out" 2>"$WORK/err" &
DAEMON_PID=$!

# Port 0 binds ephemerally; scrape the bound port from the readiness line.
for _ in $(seq 1 150); do
  grep -q "listening on" "$WORK/out" 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.2
done
grep -q "listening on" "$WORK/out" || fail "daemon never became ready"
PORT="$(sed -n 's#.*http://[^:]*:\([0-9][0-9]*\).*#\1#p' "$WORK/out")"
[[ -n "$PORT" ]] || fail "could not parse port from readiness line"
URL="http://127.0.0.1:$PORT"
echo "serve_smoke: daemon ready on port $PORT"

curl -fsS "$URL/healthz" | grep -q '"status":"ok"' || fail "healthz not ok"

SESSION="$(curl -fsS -X POST "$URL/sessions" -d '{"ttl_ms":60000}' |
  sed -n 's/.*"session_id":"\([^"]*\)".*/\1/p')"
[[ -n "$SESSION" ]] || fail "session create returned no session_id"
echo "serve_smoke: session $SESSION"

# Step 1: the full dataset (empty selection) with recommendations.
STEP1="$(curl -fsS -X POST "$URL/sessions/$SESSION/step" -d '{}')"
grep -q '"degraded":false' <<<"$STEP1" || fail "step 1 unexpectedly degraded"
grep -q '"recommendations":\[{' <<<"$STEP1" ||
  fail "step 1 produced no recommendations"

# Step 2: follow the engine's top recommendation.
curl -fsS -X POST "$URL/sessions/$SESSION/step" -d '{"recommendation":0}' |
  grep -q '"session_id"' || fail "recommendation step failed"

# Step 3: a 1-microsecond deadline must degrade, not fail or hang.
curl -fsS -X POST "$URL/sessions/$SESSION/step" -d '{"deadline_ms":0.001}' |
  grep -q '"degraded":true' || fail "deadline step did not degrade"

METRICS="$(curl -fsS "$URL/metrics")"
grep -q '^subdex_server_steps_total 3$' <<<"$METRICS" ||
  fail "metrics do not show 3 steps"
STEP_DEGRADED="$(sed -n 's/^subdex_engine_degraded_steps_total //p' \
  <<<"$METRICS")"
[[ "${STEP_DEGRADED:-0}" -ge 1 ]] ||
  fail "metrics do not reflect the degraded step"

curl -fsS -X DELETE "$URL/sessions/$SESSION" | grep -q '"deleted":true' ||
  fail "session delete failed"
NOT_FOUND="$(curl -s -o /dev/null -w '%{http_code}' \
  -X POST "$URL/sessions/$SESSION/step")"
[[ "$NOT_FOUND" == "404" ]] || fail "deleted session answered $NOT_FOUND"

kill -TERM "$DAEMON_PID"
EXIT_CODE=0
wait "$DAEMON_PID" || EXIT_CODE=$?
DAEMON_PID=""
[[ "$EXIT_CODE" == "0" ]] || fail "SIGTERM exit code was $EXIT_CODE"
grep -q "shutting down" "$WORK/err" || fail "no graceful shutdown log line"

echo "serve_smoke: OK"
