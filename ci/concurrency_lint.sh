#!/usr/bin/env bash
# Concurrency lint pack (ci/check.sh stage 2) — the lock-discipline rules
# that are about *shape*, not runtime behaviour (the runtime side is the
# util/lock_graph.h detector and TSan detect_deadlocks; see DESIGN.md §12):
#
#   C1  No raw std synchronization primitives (std::mutex, lock_guard,
#       unique_lock, scoped_lock, ...) and no raw condition-variable
#       .wait()/.wait_for()/.wait_until() calls anywhere in src/ outside
#       src/util/mutex.h. subdex::Mutex/MutexLock carry the thread-safety
#       annotations and the deadlock-detector hooks; raw primitives and
#       raw waits bypass both.
#   C2  Every subdex::Mutex member is NAMED at construction: the declaration
#       carries a brace initializer whose first argument is a string
#       literal ({"subsystem.lock", lock_rank::k...}). Unnamed mutexes are
#       invisible in detector reports and unplaceable in the hierarchy.
#   C3  No blocking syscall (read/write/poll/select/accept/connect/
#       recv*/send*) inside a MutexLock scope in src/server/ — a peer that
#       stalls the syscall would hold the lock for the whole stall. A
#       genuinely non-blocking use (poll with timeout 0) is suppressed
#       with a `lock-lint: nonblocking` comment on the line or within the
#       three lines above, which doubles as the justification.
#   C4  Every cv wait loops: a .WaitOnce()/.WaitOnceFor() call has a
#       while/for loop head on the same line or within the six lines
#       above (spurious wakeups make an unlooped wait a race), or a
#       `lock-lint: looped` comment when the loop is structured unusually.
#
# The text rules above are authoritative and run everywhere. When
# clang-query is installed, an AST pass (ci/concurrency_matchers.query)
# re-checks C1 structurally as well; when it is missing the pass degrades
# to a loud SKIP, matching the repo's clang-only-gate policy.
#
# The script ends with a self-test: scratch trees seeded with one
# violation per rule must FAIL the corresponding check (so a silently
# broken grep can't turn the stage green), and a clean scratch tree must
# pass. This is the "negative probe" of the PR 7 acceptance criteria.
set -uo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Shared patterns (raw std primitives / raw waits) + their self-probe.
. ci/lint_lib.sh

fail=0

# ---------------------------------------------------------------------------
# C1: raw primitives and raw waits. $1 = tree to scan, $2 = allowlisted
# file (relative to the tree) that may name them.
check_raw_primitives() {
  local dir="$1" allow="${2:-}" bad=0 f hits
  while IFS= read -r f; do
    if [[ -n "$allow" && "${f#"$dir"/}" == "$allow" ]]; then continue; fi
    hits=$(sed 's@//.*@@' "$f" \
           | grep -nE "$SUBDEX_RAW_PRIMITIVE_RE|$SUBDEX_RAW_WAIT_RE" \
           || true)
    if [[ -n "$hits" ]]; then
      echo "concurrency-lint C1: raw std primitive or raw cv wait in $f" \
           "(use subdex::Mutex / MutexLock::WaitOnce*):" >&2
      echo "$hits" >&2
      bad=1
    fi
  done < <(find "$dir" -name '*.cc' -o -name '*.h')
  return "$bad"
}

# ---------------------------------------------------------------------------
# C2: every Mutex member declaration starts its brace initializer with a
# string-literal name. Multi-line initializers are flagged on purpose —
# the name belongs on the declaration line, where this lint can see it.
check_named_mutexes() {
  local dir="$1" bad=0 f hits
  while IFS= read -r f; do
    hits=$(sed 's@//.*@@' "$f" \
           | grep -nE '(^|[^A-Za-z_:])Mutex[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*($|;|=|\{)' \
           | grep -vE 'Mutex[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*\{[[:space:]]*"' \
           || true)
    if [[ -n "$hits" ]]; then
      echo "concurrency-lint C2: Mutex member without a literal name in $f" \
           '(declare as: Mutex mu_{"subsystem.lock", lock_rank::k...};):' >&2
      echo "$hits" >&2
      bad=1
    fi
  done < <(find "$dir" -name '*.cc' -o -name '*.h')
  return "$bad"
}

# ---------------------------------------------------------------------------
# C3: blocking syscalls under a MutexLock in server code. Brace-depth scope
# tracking: a MutexLock declared at depth d guards everything until depth
# drops below d. String literals are blanked before brace counting so JSON
# bodies ("{}") don't skew the depth.
check_no_blocking_syscall_under_lock() {
  local dir="$1" bad=0 f out
  while IFS= read -r f; do
    out=$(awk '
      {
        hist[NR] = $0
        line = $0
        sub(/\/\/.*/, "", line)
        gsub(/"[^"]*"/, "\"\"", line)
        if (locks > 0 &&
            line ~ /::(read|write|poll|ppoll|select|accept4?|connect|recvfrom|recvmsg|recv|sendto|sendmsg|send)[[:space:]]*\(/) {
          ok = 0
          for (i = NR; i >= NR - 3 && i >= 1; --i) {
            if (hist[i] ~ /lock-lint: nonblocking/) ok = 1
          }
          if (!ok) {
            printf "%s:%d: blocking syscall inside a MutexLock scope\n",
                   FILENAME, NR
            bad = 1
          }
        }
        decl = (line ~ /MutexLock[[:space:]]+[A-Za-z_][A-Za-z0-9_]*[[:space:]]*\(/)
        n = length(line)
        for (c = 1; c <= n; ++c) {
          ch = substr(line, c, 1)
          if (ch == "{") {
            depth++
          } else if (ch == "}") {
            depth--
            while (locks > 0 && lockdepth[locks] > depth) locks--
          }
        }
        if (decl) { locks++; lockdepth[locks] = depth }
      }
      END { exit bad }
    ' "$f") || {
      echo "concurrency-lint C3: $f holds a lock across a blocking" \
           "syscall (suppress a non-blocking use with a" \
           "'lock-lint: nonblocking' comment):" >&2
      echo "$out" >&2
      bad=1
    }
  done < <(find "$dir" -name '*.cc')
  return "$bad"
}

# ---------------------------------------------------------------------------
# C4: cv waits loop on their predicate.
check_looped_waits() {
  local dir="$1" allow="${2:-}" bad=0 f out
  while IFS= read -r f; do
    if [[ -n "$allow" && "${f#"$dir"/}" == "$allow" ]]; then continue; fi
    out=$(awk '
      {
        hist[NR] = $0
        line = $0
        sub(/\/\/.*/, "", line)
        if (line ~ /\.WaitOnce(For)?[[:space:]]*\(/) {
          ok = 0
          for (i = NR; i >= NR - 6 && i >= 1; --i) {
            if (hist[i] ~ /(while|for)[[:space:]]*\(/) ok = 1
            if (hist[i] ~ /lock-lint: looped/) ok = 1
          }
          if (!ok) {
            printf "%s:%d: WaitOnce outside a predicate loop\n", FILENAME, NR
            bad = 1
          }
        }
      }
      END { exit bad }
    ' "$f") || {
      echo "concurrency-lint C4: $f waits without looping on the" \
           "predicate (wrap in while (...) / for (;;), or mark a" \
           "structured loop with 'lock-lint: looped'):" >&2
      echo "$out" >&2
      bad=1
    }
  done < <(find "$dir" -name '*.cc' -o -name '*.h')
  return "$bad"
}

# ---------------------------------------------------------------------------
# Run the rules over the real tree.
echo "--- C1: raw primitives / raw waits (src/, allowlist: util/mutex.h)"
check_raw_primitives "src" "util/mutex.h" || fail=1
echo "--- C2: every Mutex named at construction (src/)"
check_named_mutexes "src" || fail=1
echo "--- C3: no blocking syscall under a MutexLock (src/server/)"
check_no_blocking_syscall_under_lock "src/server" || fail=1
echo "--- C4: cv waits loop on their predicate (src/)"
check_looped_waits "src" "util/mutex.h" || fail=1

# ---------------------------------------------------------------------------
# AST pass (structural re-check of C1) when clang-query is available.
if command -v clang-query >/dev/null 2>&1; then
  echo "--- AST pass (clang-query)"
  ast_log="$(mktemp)"
  for f in $(find src -name '*.cc' | grep -v 'src/util/mutex'); do
    clang-query -f ci/concurrency_matchers.query "$f" -- \
      -std=c++20 -Isrc 2>/dev/null
  done > "$ast_log" || true
  if grep -q "Match #" "$ast_log"; then
    echo "concurrency-lint AST: raw synchronization primitive found:" >&2
    grep -B2 "Match #" "$ast_log" >&2
    fail=1
  fi
  rm -f "$ast_log"
else
  echo "SKIP: clang-query not installed; text rules above are authoritative"
fi

# ---------------------------------------------------------------------------
# Self-test: each rule must flag a seeded violation and pass a clean file.
echo "--- self-test (seeded violations must fail, clean tree must pass)"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

mkdir -p "$scratch/bad_c1" "$scratch/bad_c2" "$scratch/bad_c3" \
         "$scratch/bad_c4" "$scratch/clean"

# The acceptance-criteria negative probe: a raw std::mutex in a scratch TU.
cat > "$scratch/bad_c1/raw.cc" <<'EOF'
#include <mutex>
std::mutex raw_mu;
void f() { std::lock_guard<std::mutex> g(raw_mu); }
EOF

cat > "$scratch/bad_c2/unnamed.h"  <<'EOF'
#ifndef SCRATCH_UNNAMED_H_
#define SCRATCH_UNNAMED_H_
struct S {
  Mutex mu;
};
#endif
EOF

cat > "$scratch/bad_c3/blocking.cc" <<'EOF'
void f(int fd) {
  MutexLock lock(mu_);
  char c;
  ::read(fd, &c, 1);
}
EOF

cat > "$scratch/bad_c4/unlooped.cc" <<'EOF'
void f() {
  MutexLock lock(mu_);
  lock.WaitOnce(cv_);
}
EOF

cat > "$scratch/clean/good.cc" <<'EOF'
void f() {
  MutexLock lock(mu_);
  while (!done_) lock.WaitOnce(cv_);
}
EOF

selftest_fail=0
if check_raw_primitives "$scratch/bad_c1" 2>/dev/null; then
  echo "concurrency-lint SELF-TEST BROKEN: C1 missed a raw std::mutex" >&2
  selftest_fail=1
fi
if check_named_mutexes "$scratch/bad_c2" 2>/dev/null; then
  echo "concurrency-lint SELF-TEST BROKEN: C2 missed an unnamed Mutex" >&2
  selftest_fail=1
fi
if check_no_blocking_syscall_under_lock "$scratch/bad_c3" 2>/dev/null; then
  echo "concurrency-lint SELF-TEST BROKEN: C3 missed a blocking read" >&2
  selftest_fail=1
fi
if check_looped_waits "$scratch/bad_c4" 2>/dev/null; then
  echo "concurrency-lint SELF-TEST BROKEN: C4 missed an unlooped wait" >&2
  selftest_fail=1
fi
if ! { check_raw_primitives "$scratch/clean" &&
       check_named_mutexes "$scratch/clean" &&
       check_no_blocking_syscall_under_lock "$scratch/clean" &&
       check_looped_waits "$scratch/clean"; }; then
  echo "concurrency-lint SELF-TEST BROKEN: clean tree was flagged" >&2
  selftest_fail=1
fi
if [[ "$selftest_fail" -ne 0 ]]; then
  fail=1
else
  echo "self-test: OK"
fi

if [[ "$fail" -ne 0 ]]; then
  echo "concurrency-lint: FAILED" >&2
  exit 1
fi
echo "concurrency-lint: OK"
