# Shared lint definitions, sourced by ci/lint.sh (rule 8) and
# ci/concurrency_lint.sh (C1). The raw-std-primitive pattern used to live
# in both scripts as two hand-synced copies; this file is the single
# source of truth, so widening the banned set (or fixing an escape) is a
# one-line diff that both gates pick up together. tools/subdex-lint
# re-checks the same set at token level (rule C1) and the fixture suite
# in tests/lint/ pins it there.
#
# Not executable on purpose: `.` (source) it.

# Raw std synchronization primitives. Only src/util/mutex.h may name
# them; everywhere else goes through subdex::Mutex / MutexLock so the
# thread-safety annotations and deadlock-detector hooks cannot be
# bypassed. Bare std::condition_variable is deliberately absent:
# MutexLock::WaitOnce bridges to it, so cv members are sanctioned — only
# raw wait calls on one are banned (the pattern below).
SUBDEX_RAW_PRIMITIVE_RE='std::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock|condition_variable_any)\b'

# Raw condition-variable waits: .wait / .wait_for / .wait_until calls,
# which bypass MutexLock::WaitOnce / WaitOnceFor.
SUBDEX_RAW_WAIT_RE='[.>]wait(_for|_until)?[[:space:]]*\('

# Probe the patterns at source time: an empty or mangled variable would
# turn both gates into silent yeses (or match-everything noise), so a
# sourcing script dies here instead.
if ! printf 'std::mutex m;\n' | grep -qE "$SUBDEX_RAW_PRIMITIVE_RE"; then
  echo "lint_lib SELF-TEST BROKEN: primitive pattern missed std::mutex" >&2
  exit 1
fi
if printf 'subdex::Mutex m{"x"};\n' | grep -qE "$SUBDEX_RAW_PRIMITIVE_RE"; then
  echo "lint_lib SELF-TEST BROKEN: primitive pattern flags subdex::Mutex" >&2
  exit 1
fi
if ! printf 'cv_.wait(lk);\n' | grep -qE "$SUBDEX_RAW_WAIT_RE"; then
  echo "lint_lib SELF-TEST BROKEN: wait pattern missed cv_.wait(" >&2
  exit 1
fi
