#!/usr/bin/env bash
# Line-coverage gate for the algorithmic heart of the repo: src/core and
# src/pruning must stay above SUBDEX_COVERAGE_FLOOR percent line coverage
# (default 80). Builds an instrumented tree (--coverage), runs the test
# suite minus the fault sweep, then aggregates gcov line stats per source
# directory. Uses raw gcov directly — gcovr/lcov are not part of the image.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BUILD="${SUBDEX_COVERAGE_BUILD_DIR:-build-coverage}"
FLOOR="${SUBDEX_COVERAGE_FLOOR:-80}"
JOBS="$(nproc)"

if ! command -v gcov >/dev/null 2>&1; then
  echo "SKIP: gcov not installed; coverage not measured"
  exit 0
fi

cmake -B "$BUILD" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="--coverage" \
  -DCMAKE_EXE_LINKER_FLAGS="--coverage" \
  -DCMAKE_SHARED_LINKER_FLAGS="--coverage"
cmake --build "$BUILD" -j"$JOBS"
# The fault sweep only exists in injection builds anyway; -LE fault keeps
# this invariant explicit and the run fast.
ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS" -LE fault

# Every executed test wrote .gcda next to its objects. Run gcov over the
# instrumented objects of the gated libraries and fold the per-file
# "Lines executed" report into one percentage per directory.
report="$(mktemp)"
trap 'rm -f "$report"' EXIT
for lib in src/core/CMakeFiles/subdex_core.dir \
           src/pruning/CMakeFiles/subdex_pruning.dir; do
  dir="$BUILD/$lib"
  if [[ ! -d "$dir" ]]; then
    echo "ERROR: missing instrumented object dir: $dir" >&2
    exit 1
  fi
  find "$dir" -name '*.gcda' -print0 |
    xargs -0 gcov --no-output 2>/dev/null >>"$report" ||
    { echo "ERROR: gcov failed under $dir" >&2; exit 1; }
done

# gcov -n prints "File '<path>'" followed by "Lines executed:<pct>% of <n>"
# per source. Gate on the .cc files of the two directories (headers appear
# once per including TU, so their stats would double-count).
status=0
summary="$(awk -v root="$ROOT" -v floor="$FLOOR" '
  /^File / {
    file = substr($0, 7, length($0) - 7)
    in_scope = (index(file, root "/src/core/") == 1 ||
                index(file, root "/src/pruning/") == 1) && file ~ /\.cc$/
    next
  }
  /^Lines executed:/ && in_scope {
    # "Lines executed:93.55% of 124"
    pct = $2
    sub(/^executed:/, "", pct)
    sub(/%$/, "", pct)
    total = $NF
    if (!(file in seen_total) || total > seen_total[file]) {
      seen_total[file] = total
      seen_pct[file] = pct
    }
    in_scope = 0
  }
  END {
    lines = 0
    hit = 0.0
    for (f in seen_total) {
      lines += seen_total[f]
      hit += seen_pct[f] / 100.0 * seen_total[f]
    }
    if (lines == 0) {
      print "ERROR: no coverage data found for src/core + src/pruning"
      exit 2
    }
    pct = 100.0 * hit / lines
    printf "coverage: src/core + src/pruning: %.2f%% of %d lines (floor %s%%)\n", pct, lines, floor
    if (pct + 1e-9 < floor) exit 1
  }
' "$report")" || status=$?
echo "$summary"
if [[ $status -ne 0 ]]; then
  echo "ERROR: line coverage below the floor" >&2
  exit 1
fi
echo "coverage: OK"
