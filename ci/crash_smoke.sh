#!/usr/bin/env bash
# Kill-loop chaos harness for the session journal (DESIGN.md §13).
#
# Boots subdexd with --journal-dir, drives a session over real HTTP, and
# SIGKILLs the daemon at randomized moments — sometimes with a step still
# in flight, sometimes after tearing the newest segment's tail by hand,
# sometimes right after a DELETE. After every kill the next boot must:
#
#   * report zero divergent sessions,
#   * serve the surviving session with the acked digests as a prefix of
#     the recovered journal (a journaled-but-unacked in-flight step is the
#     only legal surplus),
#   * keep deleted sessions deleted (404, no resurrection).
#
# Odd cycles arm an injected journal.append delay (the build compiles
# fault points in) to widen the append-vs-kill race. The final cycle is a
# graceful SIGTERM that must exit 0. The run fails if no torn tail was
# ever exercised.
#
# Usage: ci/crash_smoke.sh
#   SUBDEX_CRASH_BUILD_DIR  reuse/create this build tree (default
#                           build-crash; configured with fault injection)
#   SUBDEX_CRASH_CYCLES     kill/restart cycles (default 25)
#   SUBDEX_CRASH_SEED       RNG seed; logged so a failure replays exactly
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${SUBDEX_CRASH_BUILD_DIR:-$ROOT/build-crash}"
CYCLES="${SUBDEX_CRASH_CYCLES:-25}"
SEED="${SUBDEX_CRASH_SEED:-$$}"
JOBS="$(nproc)"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSUBDEX_FAULT_INJECTION=ON >/dev/null
cmake --build "$BUILD" -j"$JOBS" --target subdexd
BIN="$BUILD/examples/subdexd"
if [[ ! -x "$BIN" ]]; then
  echo "ERROR: subdexd binary is missing: $BIN" >&2
  exit 1
fi

WORK="$(mktemp -d)"
JOURNAL="$WORK/journal"
DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -9 "$DAEMON_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

CYCLE=0
fail() {
  echo "crash_smoke: FAIL (seed=$SEED cycle=$CYCLE): $*" >&2
  echo "--- daemon stdout ---" >&2
  cat "$WORK/out" >&2 || true
  echo "--- daemon stderr ---" >&2
  cat "$WORK/err" >&2 || true
  echo "--- journal dir ---" >&2
  ls -l "$JOURNAL" >&2 || true
  exit 1
}

# Deterministic LCG so a logged seed replays the exact kill schedule.
RNG="$SEED"
rand() {  # rand N -> [0, N)
  RNG=$(((RNG * 1103515245 + 12345) % 2147483648))
  echo $((RNG % $1))
}

start_daemon() {  # $1 = SUBDEX_FAULT_SPEC value ("" for none)
  : >"$WORK/out"
  : >"$WORK/err"
  if [[ -n "$1" ]]; then
    SUBDEX_FAULT_SPEC="$1" "$BIN" --port=0 --dataset=movielens:0.02 \
      --ttl-ms=600000 --journal-dir="$JOURNAL" --journal-fsync=never \
      >"$WORK/out" 2>"$WORK/err" &
  else
    "$BIN" --port=0 --dataset=movielens:0.02 \
      --ttl-ms=600000 --journal-dir="$JOURNAL" --journal-fsync=never \
      >"$WORK/out" 2>"$WORK/err" &
  fi
  DAEMON_PID=$!
  for _ in $(seq 1 300); do
    grep -q "listening on" "$WORK/out" 2>/dev/null && break
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
  done
  grep -q "listening on" "$WORK/out" || fail "daemon never became ready"
  PORT="$(sed -n 's#.*http://[^:]*:\([0-9][0-9]*\).*#\1#p' "$WORK/out")"
  [[ -n "$PORT" ]] || fail "could not parse port from readiness line"
  URL="http://127.0.0.1:$PORT"
}

served_digests() {  # $1 = session id -> space-joined 16-hex digests
  local body digests
  body="$(curl -fsS "$URL/sessions/$1")" || return 1
  digests="$(grep -o '"digests":\[[^]]*\]' <<<"$body" || true)"
  { grep -o '[0-9a-f]\{16\}' <<<"$digests" || true; } | tr '\n' ' '
}

SESSION=""
ACKED=""       # space-joined digests the client was acked with
EXPECT_GONE=0  # a DELETE preceded the last kill
TORN_TOTAL=0
echo "crash_smoke: seed=$SEED cycles=$CYCLES build=$BUILD"

for CYCLE in $(seq 1 "$CYCLES"); do
  FAULT=""
  if ((CYCLE % 2 == 1)); then FAULT="journal.append:delay:20"; fi
  start_daemon "$FAULT"

  RECOV="$(grep 'journal recovery:' "$WORK/err" || true)"
  [[ -n "$RECOV" ]] || fail "no recovery report on stderr"
  DIVERGENT="$(sed -n 's/.* \([0-9][0-9]*\) divergent.*/\1/p' <<<"$RECOV")"
  TORN="$(sed -n 's/.* \([0-9][0-9]*\) torn tail.*/\1/p' <<<"$RECOV")"
  [[ "$DIVERGENT" == "0" ]] || fail "divergent session(s): $RECOV"
  TORN_TOTAL=$((TORN_TOTAL + TORN))

  if [[ -n "$SESSION" ]]; then
    if ((EXPECT_GONE)); then
      CODE="$(curl -s -o /dev/null -w '%{http_code}' \
        "$URL/sessions/$SESSION")"
      [[ "$CODE" == "404" ]] ||
        fail "deleted session $SESSION answered $CODE after restart"
      SESSION="" ACKED="" EXPECT_GONE=0
    else
      SERVED="$(served_digests "$SESSION")" ||
        fail "recovered session $SESSION did not serve"
      [[ "$SERVED" == "$ACKED"* ]] ||
        fail "acked digests not a prefix of the recovered journal:" \
          "acked=[$ACKED] served=[$SERVED]"
      # Adopt the journal's view: an in-flight step that reached the
      # journal but never acked is part of the session now.
      ACKED="$SERVED"
    fi
  fi

  if [[ -z "$SESSION" ]]; then
    SESSION="$(curl -fsS -X POST "$URL/sessions" -d '{"ttl_ms":600000}' |
      sed -n 's/.*"session_id":"\([^"]*\)".*/\1/p')"
    [[ -n "$SESSION" ]] || fail "session create failed"
    ACKED=""
  fi

  STEPS=$((1 + $(rand 4)))
  for _ in $(seq 1 "$STEPS"); do
    DIGEST="$(curl -fsS -X POST "$URL/sessions/$SESSION/step" -d '{}' |
      sed -n 's/.*"digest":"\([0-9a-f]*\)".*/\1/p')"
    [[ -n "$DIGEST" ]] || fail "step returned no digest"
    ACKED="$ACKED$DIGEST "
  done

  if (($(wc -w <<<"$ACKED") >= 12)); then
    # Cap journal growth: retire the long session, continue on a fresh one.
    curl -fsS -X DELETE "$URL/sessions/$SESSION" >/dev/null ||
      fail "retiring DELETE failed"
    SESSION="$(curl -fsS -X POST "$URL/sessions" -d '{"ttl_ms":600000}' |
      sed -n 's/.*"session_id":"\([^"]*\)".*/\1/p')"
    [[ -n "$SESSION" ]] || fail "session re-create failed"
    ACKED=""
  elif ((CYCLE % 7 == 0)); then
    # Delete-then-crash: the unlink (or tombstone) must hold across kills.
    curl -fsS -X DELETE "$URL/sessions/$SESSION" >/dev/null ||
      fail "DELETE failed"
    EXPECT_GONE=1
  fi

  if ((CYCLE == CYCLES)); then
    kill -TERM "$DAEMON_PID"
    EXIT_CODE=0
    wait "$DAEMON_PID" || EXIT_CODE=$?
    DAEMON_PID=""
    [[ "$EXIT_CODE" == "0" ]] || fail "final SIGTERM exit was $EXIT_CODE"
    break
  fi

  # Sometimes leave a step in flight so SIGKILL lands between the journal
  # append and the HTTP ack; the prefix assertion above absorbs it.
  if ((!EXPECT_GONE)) && (($(rand 2) == 0)); then
    curl -s -m 2 -X POST "$URL/sessions/$SESSION/step" -d '{}' \
      >/dev/null 2>&1 &
    sleep "0.0$(rand 5)"
  fi
  kill -9 "$DAEMON_PID" 2>/dev/null || true
  wait "$DAEMON_PID" 2>/dev/null || true
  DAEMON_PID=""

  # Periodically (and as a failsafe near the end) tear the newest
  # segment's tail: a 7-byte partial frame that recovery must truncate.
  if ((!EXPECT_GONE)) &&
    { ((CYCLE % 5 == 0)) || ((CYCLE == CYCLES - 1 && TORN_TOTAL == 0)); }; then
    SEG="$(ls "$JOURNAL/$SESSION".*.sjl 2>/dev/null | sort | tail -1)"
    if [[ -n "$SEG" ]]; then
      printf '\x21\x00\x00\x00\xde\xad\xbe' >>"$SEG"
    fi
  fi
done

((TORN_TOTAL >= 1)) || fail "no torn tail was ever exercised"
echo "crash_smoke: OK (seed=$SEED cycles=$CYCLES torn_tails=$TORN_TOTAL)"
