#!/usr/bin/env bash
# subdex-lint gate (DESIGN.md §15): the project-specific analyzer in
# tools/subdex-lint/, consolidating the C1–C4 concurrency-shape rules and
# adding the checks text rules cannot express — L1 subsystem layering
# over the real include graph against ci/layers.txt, L2 deadline/stop
# propagation into blocking calls, L3 wire-number funneling through
# src/server/json_wire.h, L4 token-accurate discard-justification and
# metric-name shape.
#
# Order of operations, each a hard failure:
#   1. build the portable engine once, cached in build-lint/ keyed on a
#      hash of the tool sources + compiler version (a stale binary can
#      never lint a newer rule set)
#   2. ci/layers.txt must validate (parse, declared deps, acyclic), and a
#      temporary copy with an artificially inverted edge (util -> server)
#      must FAIL — the cycle detector proves it can see an inversion
#      before we trust it on the real graph
#   3. the seeded-violation fixture suite (tests/lint/): every rule's bad
#      tree fails with the expected rule id and count, every clean twin
#      passes — the negative-probe policy of ci/lint.sh applied here
#   4. the full src/ tree must come back clean, using the main build's
#      compile_commands.json as the TU source of truth when one exists
#   5. the AST engine (subdex-lint-ast, clang libTooling) re-runs the
#      catalog on the real AST when the clang dev libraries are
#      installed; on GCC-only images it SKIPs loudly and the portable
#      engine remains authoritative — the same degrade policy as every
#      clang-only gate in ci/check.sh
#
# The text rules in ci/lint.sh and ci/concurrency_lint.sh stay in force
# as the everywhere-fallback: they run on images where even building the
# tool is unwanted, and double-cover the C rules here.
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

BUILD_DIR="${SUBDEX_LINT_BUILD_DIR:-build-lint}"
CXX="${CXX:-g++}"
mkdir -p "$BUILD_DIR"

# --- 1. build (cached) ----------------------------------------------------
key="$( { cat tools/subdex-lint/*.h tools/subdex-lint/*.cc; "$CXX" --version; } \
        | sha256sum | cut -c1-16)"
bin="$BUILD_DIR/subdex-lint-$key"
if [[ ! -x "$bin" ]]; then
  echo "--- building subdex-lint (cache key $key)"
  "$CXX" -std=c++20 -O1 -Wall -Wextra -I. \
    tools/subdex-lint/lexer.cc \
    tools/subdex-lint/layers.cc \
    tools/subdex-lint/checks.cc \
    tools/subdex-lint/compile_db.cc \
    tools/subdex-lint/main.cc \
    -o "$bin.tmp"
  mv "$bin.tmp" "$bin"
  # One binary per source hash; drop superseded ones so the cache dir
  # stays a cache, not a museum.
  find "$BUILD_DIR" -maxdepth 1 -name 'subdex-lint-*' ! -name "subdex-lint-$key" -delete
else
  echo "--- subdex-lint cached (key $key)"
fi

# --- 2. layers graph + inverted-edge self-test ---------------------------
echo "--- layers: validate ci/layers.txt"
"$bin" --validate-layers ci/layers.txt

inverted="$(mktemp)"
trap 'rm -f "$inverted"' EXIT
sed 's/^util:[[:space:]]*$/util: server/' ci/layers.txt > "$inverted"
if ! grep -q '^util: server$' "$inverted"; then
  echo "ERROR: self-test could not seed the inverted edge (ci/layers.txt format drifted?)" >&2
  exit 1
fi
if "$bin" --validate-layers "$inverted" >/dev/null 2>&1; then
  echo "ERROR: layers self-test failed — an inverted util -> server edge validated cleanly" >&2
  exit 1
fi
echo "--- layers: inverted-edge self-test tripped as expected"

# --- 3. fixture negative probes ------------------------------------------
echo "--- fixtures: seeded-violation suite (tests/lint/)"
bash tests/lint/run_fixtures.sh "$bin"

# --- 4. the real tree -----------------------------------------------------
db=""
for d in build "${SUBDEX_CHECK_BUILD_DIR:-build-check}"; do
  if [[ -f "$d/compile_commands.json" ]]; then
    db="$d/compile_commands.json"
    break
  fi
done
if [[ -n "$db" ]]; then
  echo "--- tree: full run (compile db: $db)"
  "$bin" --root . --layers ci/layers.txt --compile-commands "$db"
else
  echo "--- tree: full run (no compile_commands.json yet; walking src/)"
  "$bin" --root . --layers ci/layers.txt
fi

# --- 5. AST engine (clang libTooling), when available ---------------------
ast=""
for d in build "${SUBDEX_CHECK_BUILD_DIR:-build-check}"; do
  if [[ -x "$d/tools/subdex-lint/ast/subdex-lint-ast" ]]; then
    ast="$d/tools/subdex-lint/ast/subdex-lint-ast"
    break
  fi
done
if [[ -n "$ast" && -n "$db" ]]; then
  echo "--- AST engine: $ast"
  # shellcheck disable=SC2046 — the file list is newline-free by build rule
  "$ast" -p "$(dirname "$db")" --layers=ci/layers.txt --project-root=. \
    $(find src -name '*.cc' | sort)
else
  echo "SKIP: clang development libraries not installed; AST engine not" \
       "built (portable subdex-lint engine above is authoritative)"
fi

echo "subdex-lint gate: OK"
