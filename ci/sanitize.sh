#!/usr/bin/env bash
# Builds the threading-sensitive test binaries (util, engine, group cache)
# under a sanitizer and runs them.
#
# Usage: ci/sanitize.sh [thread|address]   (default: thread)
#
# ThreadSanitizer exercises the shared-pool invariants: concurrent
# ParallelFor batches, nested batches, and single-flight group-cache
# materialization. 'address' swaps in ASan+UBSan for memory errors.
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"

cmake -B "$BUILD" -S "$ROOT" \
  -DSUBDEX_SANITIZE="$SAN" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$(nproc)" \
  --target util_test engine_test group_cache_test

for test_bin in util_test engine_test group_cache_test; do
  echo "=== $test_bin ($SAN) ==="
  "$BUILD/tests/$test_bin"
done
echo "All sanitized tests passed ($SAN)."
