#!/usr/bin/env bash
# Builds and runs tests under a sanitizer.
#
# Usage: ci/sanitize.sh [thread|address|undefined]   (default: thread)
#
#   thread     ThreadSanitizer over the threading-sensitive test binaries
#              (util, engine, group cache, robustness, server, server
#              stress): concurrent ParallelFor batches, nested batches,
#              single-flight group-cache materialization, the subdexd
#              session storm (64 concurrent HTTP sessions over sharded
#              session state), the SessionManager churn /
#              Stop-mid-flight stress, the loadgen driver (shared
#              LatencyRecorder + concurrent session workers against a live
#              server), and the same-seed concurrent-subject determinism
#              pair. Runs with TSan's native deadlock
#              detection armed (detect_deadlocks=1, second_deadlock_stack=1)
#              so runtime lock-order inversions are caught here — the
#              second, independent path next to the util/lock_graph.h
#              detector, which stays UNARMED under TSan on purpose: its
#              internal spinlock would add happens-before edges that mask
#              the very races TSan exists to find.
#   address    ASan + default UBSan over the same binaries, plus a replay
#              of the committed fuzz corpora through every harness, so
#              every past fuzzer finding stays covered under sanitizers.
#   undefined  The strict UBSan matrix (DESIGN.md §10): the FULL ctest
#              suite and the fuzz-corpus replay under
#              -fsanitize=undefined,float-divide-by-zero (plus the
#              integer / implicit-conversion / nullability groups under
#              Clang) with -fno-sanitize-recover=all, so any UB class —
#              signed overflow in CI bound math, misaligned loads, lossy
#              float-to-int bucketing — aborts the run instead of
#              corrupting results.
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  thread|address|undefined) ;;
  *) echo "usage: $0 [thread|address|undefined]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"
JOBS="$(nproc)"

if [[ "$SAN" == "thread" ]]; then
  # TSan's built-in deadlock detector: lock-order inversions abort the
  # run, and second_deadlock_stack shows BOTH conflicting acquisition
  # stacks. Callers can append their own options after ours.
  export TSAN_OPTIONS="detect_deadlocks=1:second_deadlock_stack=1${TSAN_OPTIONS:+:$TSAN_OPTIONS}"
fi

TEST_BINS=(util_test engine_test group_cache_test engine_robustness_test
           server_test server_stress_test framed_log_test
           session_journal_test loadgen_test study_determinism_test)
FUZZ_BINS=(fuzz_query_parser fuzz_csv_loader fuzz_db_io)

# A renamed or never-built binary must fail the gate loudly, not be skipped.
run_checked() {
  local bin="$1"
  shift
  if [[ ! -x "$bin" ]]; then
    echo "ERROR: expected binary is missing: $bin" >&2
    exit 1
  fi
  "$bin" "$@"
}

replay_corpora() {
  for harness in "${FUZZ_BINS[@]}"; do
    corpus="$ROOT/fuzz/corpus/${harness#fuzz_}"
    echo "=== $harness corpus replay ($SAN) ==="
    run_checked "$BUILD/fuzz/$harness" --runs=2000 --seed=1 "$corpus"
  done
}

if [[ "$SAN" == "undefined" ]]; then
  # Whole-suite mode: every test and every committed fuzz input runs with
  # all UB checks fatal.
  cmake -B "$BUILD" -S "$ROOT" \
    -DSUBDEX_SANITIZE=undefined \
    -DSUBDEX_FUZZ=ON \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build "$BUILD" -j"$JOBS"
  ctest --test-dir "$BUILD" --output-on-failure -j"$JOBS"
  replay_corpora
  echo "All sanitized tests passed ($SAN)."
  exit 0
fi

FUZZ_FLAG=OFF
TARGETS=("${TEST_BINS[@]}")
if [[ "$SAN" == "address" ]]; then
  FUZZ_FLAG=ON
  TARGETS+=("${FUZZ_BINS[@]}")
fi

cmake -B "$BUILD" -S "$ROOT" \
  -DSUBDEX_SANITIZE="$SAN" \
  -DSUBDEX_FUZZ="$FUZZ_FLAG" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$JOBS" --target "${TARGETS[@]}"

for test_bin in "${TEST_BINS[@]}"; do
  echo "=== $test_bin ($SAN) ==="
  run_checked "$BUILD/tests/$test_bin"
done

if [[ "$SAN" == "address" ]]; then
  replay_corpora
fi
echo "All sanitized tests passed ($SAN)."
