#!/usr/bin/env bash
# Builds the threading-sensitive test binaries (util, engine, group cache)
# under a sanitizer and runs them.
#
# Usage: ci/sanitize.sh [thread|address]   (default: thread)
#
# ThreadSanitizer exercises the shared-pool invariants: concurrent
# ParallelFor batches, nested batches, and single-flight group-cache
# materialization. 'address' swaps in ASan+UBSan for memory errors and
# additionally replays the committed fuzz corpora through the parser
# harnesses, so every past fuzzer finding stays covered under sanitizers.
set -euo pipefail

SAN="${1:-thread}"
case "$SAN" in
  thread|address) ;;
  *) echo "usage: $0 [thread|address]" >&2; exit 2 ;;
esac

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="$ROOT/build-$SAN"

TEST_BINS=(util_test engine_test group_cache_test engine_robustness_test)
FUZZ_BINS=(fuzz_query_parser fuzz_csv_loader fuzz_db_io)

FUZZ_FLAG=OFF
TARGETS=("${TEST_BINS[@]}")
if [[ "$SAN" == "address" ]]; then
  FUZZ_FLAG=ON
  TARGETS+=("${FUZZ_BINS[@]}")
fi

cmake -B "$BUILD" -S "$ROOT" \
  -DSUBDEX_SANITIZE="$SAN" \
  -DSUBDEX_FUZZ="$FUZZ_FLAG" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD" -j"$(nproc)" --target "${TARGETS[@]}"

# A renamed or never-built binary must fail the gate loudly, not be skipped.
run_checked() {
  local bin="$1"
  shift
  if [[ ! -x "$bin" ]]; then
    echo "ERROR: expected binary is missing: $bin" >&2
    exit 1
  fi
  "$bin" "$@"
}

for test_bin in "${TEST_BINS[@]}"; do
  echo "=== $test_bin ($SAN) ==="
  run_checked "$BUILD/tests/$test_bin"
done

if [[ "$SAN" == "address" ]]; then
  for harness in "${FUZZ_BINS[@]}"; do
    corpus="$ROOT/fuzz/corpus/${harness#fuzz_}"
    echo "=== $harness corpus replay ($SAN) ==="
    run_checked "$BUILD/fuzz/$harness" --runs=2000 --seed=1 "$corpus"
  done
fi
echo "All sanitized tests passed ($SAN)."
