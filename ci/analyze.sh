#!/usr/bin/env bash
# Whole-program static-analysis gate: every translation unit in src/ must
# come out of the strongest installed path-sensitive analyzer with zero
# unsuppressed findings.
#
# Analyzer selection, strongest available first:
#
#   1. scan-build            — Clang Static Analyzer over a scratch CMake
#                              build (core, deadcode, cplusplus, security
#                              and unix checker packages), --status-bugs so
#                              any finding fails the build.
#   2. clang++ --analyze     — same checkers, driven per-TU from the
#                              compile_commands.json of a scratch configure
#                              (for images with clang but no scan-build).
#   3. g++ -fanalyzer        — GCC's path-sensitive analyzer, per-TU. The
#                              weakest of the three on C++, but it still
#                              proves leak/null/use-after-free freedom on
#                              the paths it models, and it is present on
#                              every supported image, so the gate never
#                              silently degrades to "no analysis at all".
#
# Suppressions: ci/analyzer_suppressions.txt, one `path substring|warning
# tag` pair per line. The file must stay empty or carry a written
# justification comment directly above every entry — ci/lint.sh enforces
# the comment, this script enforces that every entry still matches a live
# finding (a stale suppression fails the gate so the file cannot rot).
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

SUPPRESSIONS="$ROOT/ci/analyzer_suppressions.txt"
JOBS="$(nproc)"
CLANG_CHECKERS="core,deadcode,cplusplus,security,unix"

# --- suppression handling ---------------------------------------------------

# Prints non-comment suppression lines, `path substring|warning tag`.
active_suppressions() {
  [[ -f "$SUPPRESSIONS" ]] || return 0
  grep -vE '^\s*(#|$)' "$SUPPRESSIONS" || true
}

# Filters stdin (one finding per line) against the suppression file.
# Suppressed findings are echoed to stderr as "suppressed:" for the log.
filter_suppressed() {
  local findings suppressed_any line sup path tag
  findings="$(cat)"
  [[ -n "$findings" ]] || return 0
  while IFS= read -r line; do
    suppressed_any=no
    while IFS='|' read -r path tag; do
      [[ -n "$path" ]] || continue
      if [[ "$line" == *"$path"* && "$line" == *"$tag"* ]]; then
        suppressed_any=yes
        break
      fi
    done < <(active_suppressions)
    if [[ "$suppressed_any" == yes ]]; then
      echo "suppressed: $line" >&2
    else
      echo "$line"
    fi
  done <<< "$findings"
}

# Fails if a suppression entry matched nothing this run (stale entries are
# dead weight that hide future findings behind an unreviewed wildcard).
check_stale_suppressions() {
  local all_findings="$1" path tag
  while IFS='|' read -r path tag; do
    [[ -n "$path" ]] || continue
    if ! grep -qF -- "$path" <<< "$all_findings" || \
       ! grep -qF -- "$tag" <<< "$all_findings"; then
      echo "analyze: stale suppression (no finding matches): $path|$tag" >&2
      echo "analyze: remove it from $SUPPRESSIONS" >&2
      return 1
    fi
  done < <(active_suppressions)
}

# --- compile-database reuse -------------------------------------------------

# The main configure exports compile_commands.json (top-level
# CMakeLists.txt sets CMAKE_EXPORT_COMPILE_COMMANDS), so when a build
# tree already exists the analyzers below reuse its database instead of
# re-configuring a scratch build and guessing flags: the TU list and the
# include/define/std flags are exactly what the real build compiled.
main_compile_db() {
  local d
  for d in "$ROOT/build" "${SUBDEX_CHECK_BUILD_DIR:-$ROOT/build-check}"; do
    if [[ -f "$d/compile_commands.json" ]]; then
      echo "$d/compile_commands.json"
      return 0
    fi
  done
  return 1
}

# Prints one `file<TAB>flags` line per src/ TU in the database, keeping
# the flags an analyzer re-run needs (-I, -D, -std, -include).
db_tus() {
  python3 - "$1" <<'PY'
import json, shlex, sys

for entry in json.load(open(sys.argv[1])):
    path = entry["file"]
    if "/src/" not in path or not path.endswith(".cc"):
        continue
    args = entry.get("arguments") or shlex.split(entry.get("command", ""))
    keep = []
    take_next = False
    for arg in args:
        if take_next:
            keep.append(arg)
            take_next = False
        elif arg == "-DNDEBUG":
            # Analyze with invariants armed: NDEBUG compiles the
            # SUBDEX_CHECK guards out, and the analyzer needs the aborts
            # to prune the impossible paths they exclude.
            continue
        elif arg.startswith(("-I", "-D", "-std=")):
            keep.append(arg)
        elif arg in ("-include", "-isystem"):
            keep.append(arg)
            take_next = True
    print(path + "\t" + " ".join(keep))
PY
}

# --- analyzer tiers ---------------------------------------------------------

run_scan_build() {
  local build="$ROOT/build-analyze"
  echo "analyze: scan-build ($CLANG_CHECKERS)"
  rm -rf "$build"
  scan-build --status-bugs \
    -enable-checker deadcode -enable-checker security \
    cmake -B "$build" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug >/dev/null
  scan-build --status-bugs \
    -enable-checker deadcode -enable-checker security \
    cmake --build "$build" -j"$JOBS"
}

run_clang_analyze() {
  local db findings
  if db="$(main_compile_db)"; then
    echo "analyze: clang++ --analyze ($CLANG_CHECKERS; flags from $db)"
    findings="$(
      db_tus "$db" | while IFS=$'\t' read -r tu flags; do
        # shellcheck disable=SC2086 — flags are word-split on purpose
        clang++ --analyze \
          -Xclang -analyzer-checker="$CLANG_CHECKERS" \
          -Xclang -analyzer-output=text \
          $flags "$tu" 2>&1 | grep 'warning:' || true
      done
    )"
  else
    # No main build tree yet: scratch-configure one to get a database.
    local build="$ROOT/build-analyze"
    echo "analyze: clang++ --analyze ($CLANG_CHECKERS; scratch configure)"
    cmake -B "$build" -S "$ROOT" -DCMAKE_BUILD_TYPE=Debug >/dev/null
    findings="$(
      db_tus "$build/compile_commands.json" \
        | while IFS=$'\t' read -r tu flags; do
        # shellcheck disable=SC2086
        clang++ --analyze \
          -Xclang -analyzer-checker="$CLANG_CHECKERS" \
          -Xclang -analyzer-output=text \
          $flags "$tu" 2>&1 | grep 'warning:' || true
      done
    )"
  fi
  report "$findings"
}

run_gcc_analyzer() {
  local tmp db
  tmp="$(mktemp -d)"
  trap 'rm -rf "$tmp"' RETURN
  # NOTE: the analyzer runs on GIMPLE, so the TU must be fully compiled —
  # -fsyntax-only stops before the analyzer pass and reports nothing.
  if db="$(main_compile_db)"; then
    echo "analyze: g++ -fanalyzer over compile-db TUs (flags from $db)"
    local i=0 tu flags
    while IFS=$'\t' read -r tu flags; do
      # shellcheck disable=SC2086 — flags are word-split on purpose
      g++ -fanalyzer $flags -c "$tu" -o /dev/null \
        > "$tmp/$(echo "$tu" | tr / _).log" 2>&1 &
      i=$((i + 1))
      if (( i % JOBS == 0 )); then wait; fi
    done < <(db_tus "$db")
    wait
  else
    echo "analyze: g++ -fanalyzer over $(find src -name '*.cc' | wc -l) TUs"
    find src -name '*.cc' | xargs -P "$JOBS" -I{} sh -c '
      g++ -std=c++20 -I"$1/src" -fanalyzer -c "$2" -o /dev/null \
        > "$3/$(echo "$2" | tr / _).log" 2>&1 || true
    ' sh "$ROOT" {} "$tmp"
  fi
  local findings
  findings="$(cat "$tmp"/*.log | grep -E 'warning:.*\[-Wanalyzer|error:' || true)"
  report "$findings"
}

report() {
  local all="$1" remaining
  check_stale_suppressions "$all"
  remaining="$(filter_suppressed <<< "$all" | grep -v '^$' || true)"
  if [[ -n "$remaining" ]]; then
    echo "analyze: unsuppressed findings:" >&2
    echo "$remaining" >&2
    echo "analyze: FAILED ($(wc -l <<< "$remaining") finding(s))" >&2
    exit 1
  fi
}

if command -v scan-build >/dev/null 2>&1; then
  run_scan_build
elif command -v clang++ >/dev/null 2>&1; then
  run_clang_analyze
else
  run_gcc_analyzer
fi

echo "analyze: OK (zero unsuppressed findings)"
