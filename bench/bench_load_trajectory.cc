// subdex-loadgen: IDEBench-style load harness for the exploration engine
// and subdexd. Replays N concurrent simulated-user sessions — seeded
// SimulatedUser policies choose which recommendation to follow and how
// long to "think" between steps — against (a) the in-process SdeEngine
// and (b) a live subdexd over HTTP/JSON, sweeping concurrency x dataset
// scale. Per-step wall latency lands in an HDR-style histogram; the run
// emits a schema-versioned BENCH_load_trajectory.json whose points carry
// p50/p95/p99/max, achieved step rate, degraded/cancelled fractions,
// 429/503 shed counts and the RatingGroupCache hit rate (scraped from
// GET /metrics in server mode, MetricsRegistry in-process).
//
//   subdex-loadgen [--mode=both|engine|server] [--dataset=movielens|yelp|
//     hotel] [--scales=0.05,0.1] [--concurrency=1,8,32] [--steps=4]
//     [--think-ms=0] [--deadline-ms=0] [--open --arrivals=8 --window=5]
//     [--seed=42] [--repeat=1] [--workers=8] [--queue=64]
//     [--connect=HOST:PORT] [--notes=...] [--out=FILE]
//   subdex-loadgen --validate=FILE [--smoke]
//
// --validate re-parses and sanity-checks an existing report (CI's schema
// gate); --smoke additionally pins the invariants the seeded smoke run
// must satisfy (every point accepted steps; nothing cancelled at closed-
// loop concurrency 1).

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "loadgen/driver.h"
#include "loadgen/report.h"
#include "server/server.h"
#include "util/stats.h"
#include "util/string_util.h"

using namespace subdex;
using namespace subdex::bench;
using namespace subdex::loadgen;

namespace {

struct Cli {
  bool run_engine = true;
  bool run_server = true;
  std::string dataset = "movielens";
  std::vector<double> scales = {0.05, 0.1};
  std::vector<size_t> concurrency = {1, 8};
  size_t steps = 4;
  double think_ms = 0.0;
  double deadline_ms = 0.0;
  bool open_loop = false;
  double arrivals_per_s = 8.0;
  double window_s = 5.0;
  uint64_t seed = 42;
  size_t repeats = 1;
  size_t workers = 8;
  size_t queue = 64;
  std::string connect;  // HOST:PORT of an external subdexd
  std::string notes;
  std::string out = "BENCH_load_trajectory.json";
  std::string validate;
  bool smoke = false;
};

bool FlagValue(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

bool ParseCli(int argc, char** argv, Cli* cli) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    std::string value;
    int parsed_int = 0;
    double parsed_double = 0.0;
    if (FlagValue(arg, "--mode", &value)) {
      cli->run_engine = value == "engine" || value == "both";
      cli->run_server = value == "server" || value == "both";
      if (!cli->run_engine && !cli->run_server) {
        std::fprintf(stderr, "unknown --mode=%s\n", value.c_str());
        return false;
      }
    } else if (FlagValue(arg, "--dataset", &value)) {
      if (value != "movielens" && value != "yelp" && value != "hotel") {
        std::fprintf(stderr, "unknown --dataset=%s\n", value.c_str());
        return false;
      }
      cli->dataset = value;
    } else if (FlagValue(arg, "--scales", &value)) {
      cli->scales.clear();
      for (const std::string& field : Split(value, ',')) {
        if (!ParseDouble(field, &parsed_double) || parsed_double <= 0.0) {
          std::fprintf(stderr, "bad scale '%s'\n", field.c_str());
          return false;
        }
        cli->scales.push_back(parsed_double);
      }
    } else if (FlagValue(arg, "--concurrency", &value)) {
      cli->concurrency.clear();
      for (const std::string& field : Split(value, ',')) {
        if (!ParseInt(field, &parsed_int) || parsed_int < 1) {
          std::fprintf(stderr, "bad concurrency '%s'\n", field.c_str());
          return false;
        }
        cli->concurrency.push_back(static_cast<size_t>(parsed_int));
      }
    } else if (FlagValue(arg, "--steps", &value)) {
      if (!ParseInt(value, &parsed_int) || parsed_int < 1) return false;
      cli->steps = static_cast<size_t>(parsed_int);
    } else if (FlagValue(arg, "--think-ms", &value)) {
      if (!ParseDouble(value, &cli->think_ms)) return false;
    } else if (FlagValue(arg, "--deadline-ms", &value)) {
      if (!ParseDouble(value, &cli->deadline_ms)) return false;
    } else if (std::strcmp(arg, "--open") == 0) {
      cli->open_loop = true;
    } else if (FlagValue(arg, "--arrivals", &value)) {
      if (!ParseDouble(value, &cli->arrivals_per_s)) return false;
    } else if (FlagValue(arg, "--window", &value)) {
      if (!ParseDouble(value, &cli->window_s)) return false;
    } else if (FlagValue(arg, "--seed", &value)) {
      if (!ParseInt(value, &parsed_int) || parsed_int < 0) return false;
      cli->seed = static_cast<uint64_t>(parsed_int);
    } else if (FlagValue(arg, "--repeat", &value)) {
      // RepeatCount (bench_common) also honors this flag; parsed here only
      // to validate early.
      if (!ParseInt(value, &parsed_int) || parsed_int < 1) return false;
    } else if (FlagValue(arg, "--workers", &value)) {
      if (!ParseInt(value, &parsed_int) || parsed_int < 1) return false;
      cli->workers = static_cast<size_t>(parsed_int);
    } else if (FlagValue(arg, "--queue", &value)) {
      if (!ParseInt(value, &parsed_int) || parsed_int < 1) return false;
      cli->queue = static_cast<size_t>(parsed_int);
    } else if (FlagValue(arg, "--connect", &value)) {
      cli->connect = value;
    } else if (FlagValue(arg, "--notes", &value)) {
      cli->notes = value;
    } else if (FlagValue(arg, "--out", &value)) {
      cli->out = value;
    } else if (FlagValue(arg, "--validate", &value)) {
      cli->validate = value;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      cli->smoke = true;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", arg);
      return false;
    }
  }
  cli->repeats = RepeatCount(argc, argv);
  return true;
}

BenchDataset MakeScaled(const std::string& kind, double scale,
                        uint64_t seed) {
  if (kind == "yelp") return MakeYelp(scale, seed);
  if (kind == "hotel") return MakeHotel(scale, seed);
  return MakeMovielens(scale, seed);
}

/// Session-engine template: the serving configuration (one thread per
/// session — concurrency comes from many sessions) with the benchmark
/// candidate budget, so a step is the same work subdexd does per request.
EngineConfig SessionEngineConfig() {
  EngineConfig config = QualityConfig();
  config.num_threads = 1;
  config.operations.max_candidates = 80;
  return config;
}

double MedianOf(std::vector<double> xs) { return Median(std::move(xs)); }

uint64_t MedianU64(const std::vector<uint64_t>& xs) {
  std::vector<double> d(xs.begin(), xs.end());
  return static_cast<uint64_t>(Median(std::move(d)));
}

/// Field-wise median across repeat runs of one cell. Identity fields come
/// from the first point (identical across repeats by construction).
TrajectoryPoint Medianize(const std::vector<TrajectoryPoint>& runs) {
  TrajectoryPoint out = runs.front();
  out.repeats = runs.size();
  if (runs.size() == 1) return out;
  std::vector<double> wall, degraded, cancelled, p50, p95, p99, max, mean,
      rate;
  std::vector<uint64_t> started, completed, attempted, ok, failed, s429, s503,
      terr, dropped, hits, misses;
  for (const TrajectoryPoint& r : runs) {
    wall.push_back(r.wall_s);
    degraded.push_back(r.degraded_fraction);
    cancelled.push_back(r.cancelled_fraction);
    p50.push_back(r.latency_ms.p50);
    p95.push_back(r.latency_ms.p95);
    p99.push_back(r.latency_ms.p99);
    max.push_back(r.latency_ms.max);
    mean.push_back(r.latency_ms.mean);
    rate.push_back(r.steps_per_s);
    started.push_back(r.sessions_started);
    completed.push_back(r.sessions_completed);
    attempted.push_back(r.steps_attempted);
    ok.push_back(r.steps_ok);
    failed.push_back(r.steps_failed);
    s429.push_back(r.shed_429);
    s503.push_back(r.shed_503);
    terr.push_back(r.transport_errors);
    dropped.push_back(r.arrivals_dropped);
    hits.push_back(r.cache.hits);
    misses.push_back(r.cache.misses);
  }
  out.wall_s = MedianOf(std::move(wall));
  out.degraded_fraction = MedianOf(std::move(degraded));
  out.cancelled_fraction = MedianOf(std::move(cancelled));
  out.latency_ms.p50 = MedianOf(std::move(p50));
  out.latency_ms.p95 = MedianOf(std::move(p95));
  out.latency_ms.p99 = MedianOf(std::move(p99));
  out.latency_ms.max = MedianOf(std::move(max));
  out.latency_ms.mean = MedianOf(std::move(mean));
  out.steps_per_s = MedianOf(std::move(rate));
  out.sessions_started = MedianU64(started);
  out.sessions_completed = MedianU64(completed);
  out.steps_attempted = MedianU64(attempted);
  out.steps_ok = MedianU64(ok);
  out.steps_failed = MedianU64(failed);
  out.shed_429 = MedianU64(s429);
  out.shed_503 = MedianU64(s503);
  out.transport_errors = MedianU64(terr);
  out.arrivals_dropped = MedianU64(dropped);
  out.cache.hits = MedianU64(hits);
  out.cache.misses = MedianU64(misses);
  return out;
}

WorkloadSpec SpecFor(const Cli& cli, size_t concurrency) {
  WorkloadSpec spec;
  spec.mode = cli.open_loop ? LoopMode::kOpen : LoopMode::kClosed;
  spec.sessions = concurrency;
  spec.steps_per_session = cli.steps;
  spec.think_time_mean_ms = cli.think_ms;
  spec.arrivals_per_s = cli.arrivals_per_s;
  spec.arrival_window_s = cli.window_s;
  spec.step_deadline_ms = cli.deadline_ms;
  spec.seed = cli.seed;
  return spec;
}

/// Runs one sweep cell (repeats included) and returns the medianized point.
TrajectoryPoint RunCell(LoadTarget& target, const Cli& cli,
                        const std::string& dataset_name, uint64_t scale,
                        size_t concurrency) {
  std::vector<TrajectoryPoint> runs;
  for (size_t r = 0; r < cli.repeats; ++r) {
    TrajectoryPoint point;
    point.target = target.name();
    point.dataset = dataset_name;
    point.scale = scale;
    point.loop = cli.open_loop ? "open" : "closed";
    point.concurrency = concurrency;
    point.steps_per_session = cli.steps;
    point.think_time_mean_ms = cli.think_ms;
    point.step_deadline_ms = cli.deadline_ms;
    LoadRunResult run = RunWorkload(target, SpecFor(cli, concurrency));
    SetMeasurements(&point, run);
    runs.push_back(std::move(point));
  }
  TrajectoryPoint point = Medianize(runs);
  std::printf("%-7s %-22s conc %3zu: p50 %8.2f p95 %8.2f p99 %8.2f max "
              "%8.2f ms | %7.1f steps/s | ok %llu/%llu shed %llu/%llu "
              "degraded %.3f cache %.2f\n",
              point.target.c_str(), dataset_name.c_str(), concurrency,
              point.latency_ms.p50, point.latency_ms.p95, point.latency_ms.p99,
              point.latency_ms.max, point.steps_per_s,
              static_cast<unsigned long long>(point.steps_ok),
              static_cast<unsigned long long>(point.steps_attempted),
              static_cast<unsigned long long>(point.shed_429),
              static_cast<unsigned long long>(point.shed_503),
              point.degraded_fraction, point.cache.hit_rate());
  return point;
}

int ValidateMode(const Cli& cli) {
  Result<TrajectoryReport> report = ReadReportFile(cli.validate);
  if (!report.ok()) {
    std::fprintf(stderr, "FAIL %s: %s\n", cli.validate.c_str(),
                 report.status().ToString().c_str());
    return 1;
  }
  Status valid = ValidateReport(report.value(), cli.smoke);
  if (!valid.ok()) {
    std::fprintf(stderr, "FAIL %s: %s\n", cli.validate.c_str(),
                 valid.ToString().c_str());
    return 1;
  }
  std::printf("OK %s: %zu point(s), seed %llu%s\n", cli.validate.c_str(),
              report.value().points.size(),
              static_cast<unsigned long long>(report.value().seed),
              cli.smoke ? " (smoke invariants hold)" : "");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli;
  if (!ParseCli(argc, argv, &cli)) return 2;
  if (!cli.validate.empty()) return ValidateMode(cli);

  PrintBanner("Load trajectory: latency under concurrent exploration",
              "IDEBench-style serving benchmark (DESIGN.md section 14)");
  std::printf("seed %llu, %zu repeat(s), %s loop, %zu step(s)/session, "
              "think %.0f ms, deadline %.0f ms\n",
              static_cast<unsigned long long>(cli.seed), cli.repeats,
              cli.open_loop ? "open" : "closed", cli.steps, cli.think_ms,
              cli.deadline_ms);

  // Datasets: one per scale, generated deterministically (the dataset seed
  // is fixed so --seed varies the workload, never the data).
  struct ScaledDataset {
    double scale_factor;
    std::shared_ptr<const SubjectiveDatabase> db;
    std::string name;
    uint64_t ratings;
  };
  std::vector<ScaledDataset> datasets;
  for (double scale : cli.scales) {
    BenchDataset made = MakeScaled(cli.dataset, scale, 4242);
    ScaledDataset entry;
    entry.scale_factor = scale;
    entry.name = made.name;
    entry.ratings = made.db->num_records();
    entry.db = std::shared_ptr<const SubjectiveDatabase>(std::move(made.db));
    std::printf("dataset %s: %llu ratings\n", entry.name.c_str(),
                static_cast<unsigned long long>(entry.ratings));
    datasets.push_back(std::move(entry));
  }

  TrajectoryReport report;
  report.seed = cli.seed;
  report.notes = cli.notes;

  if (cli.run_engine) {
    for (const ScaledDataset& dataset : datasets) {
      EngineLoadTarget target(dataset.db.get(), SessionEngineConfig(),
                              cli.deadline_ms, /*with_recommendations=*/true);
      for (size_t concurrency : cli.concurrency) {
        report.points.push_back(
            RunCell(target, cli, dataset.name, dataset.ratings, concurrency));
      }
    }
  }

  if (cli.run_server) {
    if (!cli.connect.empty()) {
      // External daemon: drive its default dataset (scale unknown: 0).
      const std::vector<std::string> parts = Split(cli.connect, ':');
      int port = 0;
      if (parts.size() != 2 || !ParseInt(parts[1], &port) || port <= 0 ||
          port > 65535) {
        std::fprintf(stderr, "bad --connect=%s (want HOST:PORT)\n",
                     cli.connect.c_str());
        return 2;
      }
      HttpClientOptions client;
      client.host = parts[0];
      client.port = static_cast<uint16_t>(port);
      HttpLoadTarget target(client, "", cli.deadline_ms, true);
      for (size_t concurrency : cli.concurrency) {
        report.points.push_back(
            RunCell(target, cli, "external", 0, concurrency));
      }
    } else {
      // A live subdexd in-process: real sockets, real workers, every scale
      // registered as its own dataset.
      SubdexServer::Options options;
      options.http.num_workers = cli.workers;
      options.http.queue_capacity = cli.queue;
      options.sessions.max_sessions = 1024;
      options.engine = SessionEngineConfig();
      SubdexServer server(std::move(options));
      for (const ScaledDataset& dataset : datasets) {
        Status registered = server.RegisterDataset(dataset.name, dataset.db);
        if (!registered.ok()) {
          std::fprintf(stderr, "RegisterDataset: %s\n",
                       registered.ToString().c_str());
          return 1;
        }
      }
      Status started = server.Start();
      if (!started.ok()) {
        std::fprintf(stderr, "server start: %s\n",
                     started.ToString().c_str());
        return 1;
      }
      std::printf("subdexd live on 127.0.0.1:%u (%zu workers, queue %zu)\n",
                  server.port(), cli.workers, cli.queue);
      HttpClientOptions client;
      client.port = server.port();
      for (const ScaledDataset& dataset : datasets) {
        HttpLoadTarget target(client, dataset.name, cli.deadline_ms, true);
        for (size_t concurrency : cli.concurrency) {
          report.points.push_back(RunCell(target, cli, dataset.name,
                                          dataset.ratings, concurrency));
        }
      }
      server.Stop();
    }
  }

  Status valid = ValidateReport(report, /*smoke=*/false);
  if (!valid.ok()) {
    std::fprintf(stderr, "generated report fails validation: %s\n",
                 valid.ToString().c_str());
    return 1;
  }
  Status written = WriteReportFile(cli.out, report);
  if (!written.ok()) {
    std::fprintf(stderr, "%s\n", written.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu points)\n", cli.out.c_str(),
              report.points.size());
  return 0;
}
