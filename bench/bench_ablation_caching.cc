// Ablation of the rating-group cache (DESIGN.md; in the spirit of the
// caching / repeated-data-access-avoidance systems the paper cites, [18]
// and [57]): the Recommendation Builder materializes hundreds of candidate
// target groups per step; candidates pointing back toward previously
// evaluated selections (roll-ups, sideways changes, revisited regions) hit
// the cache. The bench measures per-step latency and the hit rate along a
// Fully-Automated path, with the cache disabled and at several capacities.

#include <cstdio>

#include "bench/bench_common.h"
#include "engine/exploration_session.h"

using namespace subdex;
using namespace subdex::bench;

int main() {
  PrintBanner("Rating-group cache ablation",
              "DESIGN.md (repeated-access avoidance, cf. paper refs [18][57])");
  double scale = EnvDouble("SUBDEX_SCALE", 0.2);
  size_t steps = static_cast<size_t>(EnvInt("SUBDEX_STEPS", 5));
  BenchDataset yelp = MakeYelp(scale, 151);
  std::printf("%s: %zu records; %zu-step FA path with recommendations\n\n",
              yelp.name.c_str(), yelp.db->num_records(), steps);

  std::printf("%-14s %14s %12s %12s\n", "cache entries", "avg step ms",
              "hit rate", "evictions");
  for (size_t capacity : {0u, 64u, 256u, 1024u}) {
    EngineConfig config = QualityConfig();
    config.group_cache_capacity = capacity;
    config.operations.max_candidates = 80;
    ExplorationSession session(yelp.db.get(), config,
                               ExplorationMode::kFullyAutomated);
    session.Start(GroupSelection{});
    session.RunAutomated(steps - 1);
    double total_ms = 0.0;
    for (const StepResult& step : session.path()) total_ms += step.elapsed_ms;
    RatingGroupCache::Stats stats =
        session.engine().group_cache().stats();
    std::printf("%-14zu %14.1f %11.0f%% %12zu\n", capacity,
                total_ms / static_cast<double>(session.path().size()),
                100.0 * stats.HitRate(), stats.evictions);
  }
  std::printf(
      "\nexpected shape: identical exploration results (unit-tested); a "
      "single-digit hit rate from roll-up/revisit candidates that shaves a "
      "comparable slice off the per-step latency; undersized capacities "
      "evict entries before they can hit.\n");
  return 0;
}
