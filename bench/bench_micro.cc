// Micro-benchmarks (google-benchmark) for the primitives every experiment
// rests on: distribution distances, rating-map construction, shared
// multi-aggregate scans, GMM diversification, group materialization and
// candidate-operation enumeration — plus the full engine step with its
// per-phase timing breakdown (StepTimings).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "core/distance.h"
#include "core/gmm.h"
#include "core/interestingness.h"
#include "core/rating_map.h"
#include "engine/sde_engine.h"
#include "pruning/multi_aggregate_scan.h"
#include "subjective/operation.h"
#include "util/metrics.h"
#include "util/random.h"
#include "util/stats.h"

namespace {

using namespace subdex;
using namespace subdex::bench;

RatingDistribution RandomDistribution(Rng* rng, int scale, int total) {
  RatingDistribution d(scale);
  for (int i = 0; i < total; ++i) d.Add(rng->UniformInt(1, scale));
  return d;
}

const SubjectiveDatabase& SharedDb() {
  static BenchDataset data = MakeYelp(0.05, 71);
  return *data.db;
}

void BM_TotalVariation(benchmark::State& state) {
  Rng rng(1);
  RatingDistribution a = RandomDistribution(&rng, 5, 1000);
  RatingDistribution b = RandomDistribution(&rng, 5, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.TotalVariationDistance(b));
  }
}
BENCHMARK(BM_TotalVariation);

void BM_SmoothedTotalVariation(benchmark::State& state) {
  Rng rng(2);
  RatingDistribution a = RandomDistribution(&rng, 5, 1000);
  RatingDistribution b = RandomDistribution(&rng, 5, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmoothedTotalVariation(a, b, 4.0));
  }
}
BENCHMARK(BM_SmoothedTotalVariation);

void BM_Emd(benchmark::State& state) {
  Rng rng(3);
  RatingDistribution a = RandomDistribution(&rng, 5, 1000);
  RatingDistribution b = RandomDistribution(&rng, 5, 1000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Emd(b));
  }
}
BENCHMARK(BM_Emd);

void BM_HoeffdingSerfling(benchmark::State& state) {
  size_t sampled = 100;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HoeffdingSerflingEpsilon(sampled, 10000, 0.05));
    sampled = sampled % 9000 + 100;
  }
}
BENCHMARK(BM_HoeffdingSerfling);

void BM_MaterializeGroup(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  GroupSelection sel;
  sel.reviewer_pred = Predicate({{0, 0}});
  for (auto _ : state) {
    RatingGroup g = RatingGroup::Materialize(db, sel);
    benchmark::DoNotOptimize(g.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(db.num_records()));
}
BENCHMARK(BM_MaterializeGroup);

void BM_BuildRatingMap(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  RatingGroup all = RatingGroup::Materialize(db, GroupSelection{});
  RatingMapKey key{Side::kItem, static_cast<size_t>(state.range(0)), 0};
  for (auto _ : state) {
    RatingMap map = RatingMap::Build(all, key);
    benchmark::DoNotOptimize(map.num_subgroups());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(all.size()));
}
BENCHMARK(BM_BuildRatingMap)->Arg(0)->Arg(1);

void BM_MultiAggregateScan(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  RatingGroup all = RatingGroup::Materialize(db, GroupSelection{});
  for (auto _ : state) {
    MultiAggregateScan scan(&all, Side::kItem, 1);
    benchmark::DoNotOptimize(scan.Update(0, all.size()));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(all.size()) *
                          static_cast<int64_t>(db.num_dimensions()));
}
BENCHMARK(BM_MultiAggregateScan);

void BM_InterestingnessScores(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  RatingGroup all = RatingGroup::Materialize(db, GroupSelection{});
  RatingMap map = RatingMap::Build(all, {Side::kItem, 1, 0});
  std::vector<RatingDistribution> seen = {map.overall(), map.overall()};
  UtilityConfig config;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeScores(map, seen, config));
  }
}
BENCHMARK(BM_InterestingnessScores);

void BM_GmmSelect(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<double> pos(n);
  for (double& p : pos) p = rng.UniformDouble();
  auto dist = [&pos](size_t a, size_t b) { return std::abs(pos[a] - pos[b]); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(GmmSelect(n, 3, dist, 0));
  }
}
BENCHMARK(BM_GmmSelect)->Arg(9)->Arg(32)->Arg(128);

void BM_EnumerateOperations(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  GroupSelection current;
  current.reviewer_pred = Predicate({{0, 0}});
  OperationEnumerationOptions options;
  options.max_candidates = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EnumerateCandidateOperations(db, current, options));
  }
}
BENCHMARK(BM_EnumerateOperations)->Arg(100)->Arg(400);

// One full exploration step (display maps + recommendation fan-out) on the
// shared engine pool. Arg = num_threads; Arg(1) is the serial baseline, so
// comparing the reco_ms counters across args shows the parallel speedup of
// the recommendation phase. The per-phase StepTimings means are exported
// as counters.
void BM_EngineExecuteStep(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  EngineConfig config;
  config.num_threads = static_cast<size_t>(state.range(0));
  config.parallel_recommendations = state.range(0) > 1;
  config.parallel_generation = state.range(0) > 1;
  config.operations.max_candidates = 60;
  config.min_group_size = 1;
  SdeEngine engine(&db, config);
  StepTimings sum;
  size_t steps = 0;
  for (auto _ : state) {
    engine.ResetHistory();
    StepResult step = engine.ExecuteStep(GroupSelection{}, true);
    benchmark::DoNotOptimize(step.recommendations.size());
    sum.materialize_ms += step.timings.materialize_ms;
    sum.rm_generation_ms += step.timings.rm_generation_ms;
    sum.gmm_selection_ms += step.timings.gmm_selection_ms;
    sum.recommendation_ms += step.timings.recommendation_ms;
    sum.pool_tasks += step.timings.pool_tasks;
    sum.pool_batches += step.timings.pool_batches;
    ++steps;
  }
  if (steps > 0) {
    double n = static_cast<double>(steps);
    state.counters["materialize_ms"] = sum.materialize_ms / n;
    state.counters["rm_gen_ms"] = sum.rm_generation_ms / n;
    state.counters["gmm_ms"] = sum.gmm_selection_ms / n;
    state.counters["reco_ms"] = sum.recommendation_ms / n;
    state.counters["pool_tasks"] = static_cast<double>(sum.pool_tasks) / n;
    state.counters["pool_batches"] = static_cast<double>(sum.pool_batches) / n;
  }
}
BENCHMARK(BM_EngineExecuteStep)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The same step driven through StepOptions with a far-future deadline: the
// extra cost is pure budget-checking (StopToken polls at phase and chunk
// boundaries) since the deadline never fires. Compare against
// BM_EngineExecuteStep/4 — the deadline-check overhead budget is < 1%.
void BM_EngineExecuteStepDeadline(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  EngineConfig config;
  config.num_threads = 4;
  config.parallel_recommendations = true;
  config.parallel_generation = true;
  config.operations.max_candidates = 60;
  config.min_group_size = 1;
  SdeEngine engine(&db, config);
  for (auto _ : state) {
    engine.ResetHistory();
    StepOptions options;
    options.deadline = Deadline::FromNowMs(3'600'000.0);  // never fires
    StepResult step = engine.ExecuteStep(GroupSelection{}, options);
    benchmark::DoNotOptimize(step.recommendations.size());
  }
}
BENCHMARK(BM_EngineExecuteStepDeadline)->Unit(benchmark::kMillisecond);

void BM_SignatureEmdDistance(benchmark::State& state) {
  const SubjectiveDatabase& db = SharedDb();
  RatingGroup all = RatingGroup::Materialize(db, GroupSelection{});
  RatingMap a = RatingMap::Build(all, {Side::kItem, 0, 0});
  RatingMap b = RatingMap::Build(all, {Side::kItem, 1, 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        RatingMapDistance(a, b, MapDistanceKind::kSignatureEmd));
  }
}
BENCHMARK(BM_SignatureEmdDistance);

// --- metrics primitives (DESIGN.md §9 overhead budget) ------------------
//
// BM_EngineExecuteStep above doubles as the end-to-end overhead proof for
// the instrumentation: every subsystem it exercises increments the global
// registry on this build, so its numbers versus the uninstrumented seed
// (or a -DSUBDEX_METRICS=OFF build of this same benchmark) bound the total
// metrics cost of a step. The primitives below isolate the per-call cost.

void BM_MetricsCounterIncrement(benchmark::State& state) {
  Counter& counter = MetricsRegistry::Global().GetCounter("bench_counter");
  for (auto _ : state) {
    counter.Increment();
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_MetricsCounterIncrement);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  Histogram& hist = MetricsRegistry::Global().GetHistogram(
      "bench_histogram", MetricsRegistry::LatencyBucketsMs());
  double value = 0.0;
  for (auto _ : state) {
    hist.Observe(value);
    value = value > 10000.0 ? 0.0 : value + 1.7;
  }
  benchmark::DoNotOptimize(hist.TotalCount());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsSnapshot(benchmark::State& state) {
  // Snapshot over whatever the preceding benchmarks registered — the
  // realistic registry size of an instrumented process.
  for (auto _ : state) {
    MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
    benchmark::DoNotOptimize(snap.counters.size());
  }
}
BENCHMARK(BM_MetricsSnapshot);

}  // namespace

BENCHMARK_MAIN();
