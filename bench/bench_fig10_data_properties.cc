// Figure 10: running times as a function of data properties, for SubDEx and
// the five restricted variants of Section 5.1. Panel (a) varies the
// database size by randomly sampling reviewers (keeping their rating
// records); panel (b) varies the number of attributes (akin to the number
// of GroupBys / candidate rating maps); panel (c) varies the number of
// attribute-values (akin to the number of candidate operations). Following
// the paper, paths are Fully-Automated on the Yelp-shaped dataset and the
// reported time is the average per-step latency from picking an operation
// to having maps and recommendations displayed. The per-step histogram
// update count is reported alongside as a hardware-independent work
// measure (wall-time parallelism effects require multiple physical cores).

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/transforms.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

EngineConfig ScalabilityConfig(const AlgorithmVariant& variant) {
  EngineConfig config = QualityConfig();
  config.pruning = variant.pruning;
  config.parallel_recommendations = variant.parallel;
  config.operations.max_candidates = 80;
  return config;
}

void PrintHeaderRow() {
  std::printf("%-16s", "variant");
  std::printf(" %14s %18s\n", "avg step ms", "avg updates/step");
}

void MeasureAllVariants(const SubjectiveDatabase& db, size_t steps,
                        size_t repeats) {
  for (const AlgorithmVariant& v : ScalabilityVariants()) {
    StepCost cost = MeasureSteps(db, ScalabilityConfig(v), steps, repeats);
    std::printf("%-16s %14.1f %18.0f\n", v.name, cost.avg_ms,
                cost.avg_record_updates);
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintBanner("Running times vs. data properties", "Figure 10 (a, b, c)");
  double scale = EnvDouble("SUBDEX_SCALE", 0.2);
  size_t steps = static_cast<size_t>(EnvInt("SUBDEX_STEPS", 3));
  size_t repeats = RepeatCount(argc, argv);
  BenchDataset yelp = MakeYelp(scale, 81);
  std::printf("%s: %zu records, %zu reviewers; %zu-step FA paths; "
              "median of %zu run(s)\n",
              yelp.name.c_str(), yelp.db->num_records(),
              yelp.db->num_reviewers(), steps, repeats);

  std::printf("\n--- (a) database size (reviewer sampling) ---\n");
  for (double fraction : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    auto sampled = SampleReviewers(*yelp.db, fraction, 811);
    std::printf("\nfraction %.1f (%zu records):\n", fraction,
                sampled->num_records());
    PrintHeaderRow();
    MeasureAllVariants(*sampled, steps, repeats);
  }

  std::printf("\n--- (b) number of attributes ---\n");
  for (size_t keep : {6u, 12u, 18u, 24u}) {
    auto dropped = DropAttributes(*yelp.db, keep, 813);
    std::printf("\n%zu attributes:\n", keep);
    PrintHeaderRow();
    MeasureAllVariants(*dropped, steps, repeats);
  }

  std::printf("\n--- (c) number of attribute-values ---\n");
  // The candidate-operation space grows with the number of values, so this
  // panel must not cap it; the enumeration budget is lifted here.
  for (size_t max_values : {3u, 6u, 9u, 13u}) {
    auto limited = LimitAttributeValues(*yelp.db, max_values, 815);
    std::printf("\n<=%zu values per attribute:\n", max_values);
    PrintHeaderRow();
    for (const AlgorithmVariant& v : ScalabilityVariants()) {
      EngineConfig config = ScalabilityConfig(v);
      config.operations.max_candidates = 400;
      StepCost cost = MeasureSteps(*limited, config, steps, repeats);
      std::printf("%-16s %14.1f %18.0f\n", v.name, cost.avg_ms,
                  cost.avg_record_updates);
    }
  }

  std::printf(
      "\nexpected shape (paper Fig. 10): (a) run time nearly flat in the "
      "database size — the candidate map/operation space depends on the "
      "attribute structure, not the record count; (b, c) near-linear growth "
      "with #attributes and #attribute-values; pruning variants below "
      "No-Pruning, Naive slowest.\n");
  return 0;
}
