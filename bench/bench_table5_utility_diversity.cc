// Table 5: the utility/diversity trade-off of the pruning-diversity factor
// l. Exploration paths are generated Fully-Automated (fixing next-action
// operations); per configuration we report the number of distinct
// aggregation attributes displayed along the path, the summed utility of
// the displayed maps, and the average per-step diversity (minimum pairwise
// EMD of the displayed set), for utility-only (l=1), l=2, l=3 and
// diversity-only selection.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "core/distance.h"
#include "engine/exploration_session.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

struct PathMetrics {
  size_t distinct_attributes = 0;
  double total_utility = 0.0;
  double avg_diversity = 0.0;
};

PathMetrics RunPath(const SubjectiveDatabase& db, SelectionMode mode,
                    size_t l, size_t steps) {
  EngineConfig config = QualityConfig();
  config.selection = mode;
  config.l = l;
  ExplorationSession session(&db, config, ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  session.RunAutomated(steps - 1);

  PathMetrics metrics;
  std::set<std::pair<int, size_t>> attrs;
  double diversity_sum = 0.0;
  size_t diversity_steps = 0;
  for (const StepResult& step : session.path()) {
    std::vector<RatingMap> maps;
    for (const ScoredRatingMap& m : step.maps) {
      metrics.total_utility += m.utility;
      attrs.insert({m.map.key().side == Side::kReviewer ? 0 : 1,
                    m.map.key().attribute});
      maps.push_back(m.map);
    }
    if (maps.size() >= 2) {
      diversity_sum += SetDiversity(maps, config.map_distance);
      ++diversity_steps;
    }
  }
  metrics.distinct_attributes = attrs.size();
  metrics.avg_diversity =
      diversity_steps > 0 ? diversity_sum / diversity_steps : 0.0;
  return metrics;
}

void RunDataset(const BenchDataset& data) {
  const size_t steps = 7;  // Scenario I path length (Table 3)
  std::printf("\n=== %s (%zu records; %zu-step Fully-Automated path, k=3) ===\n",
              data.name.c_str(), data.db->num_records(), steps);
  std::printf("%-16s %-12s %-10s %s\n", "Selection", "#attributes",
              "utility", "diversity");
  struct Config {
    const char* label;
    SelectionMode mode;
    size_t l;
  };
  const Config configs[] = {
      {"Utility-Only", SelectionMode::kUtilityOnly, 1},
      {"l = 2", SelectionMode::kUtilityAndDiversity, 2},
      {"l = 3", SelectionMode::kUtilityAndDiversity, 3},
      {"Diversity-Only", SelectionMode::kDiversityOnly, 3},
  };
  for (const Config& c : configs) {
    PathMetrics m = RunPath(*data.db, c.mode, c.l, steps);
    std::printf("%-16s %-12zu %-10.1f %.3f\n", c.label,
                m.distinct_attributes, m.total_utility, m.avg_diversity);
  }
}

}  // namespace

int main() {
  PrintBanner("Utility vs. diversity across the pruning-diversity factor l",
              "Table 5");
  RunDataset(MakeMovielens(EnvDouble("SUBDEX_SCALE", 0.15), 41));
  RunDataset(MakeYelp(EnvDouble("SUBDEX_SCALE", 0.05), 43));
  std::printf(
      "\npaper (Table 5): attributes grow 4->12 (Movielens) / 6->19 (Yelp) "
      "from utility-only to diversity-only; utility decreases (25.2->14.8 / "
      "26.1->15.5); diversity increases (0.02->0.11 / 0.03->0.11).\n"
      "expected shape: #attributes and diversity increase with l while "
      "summed utility decreases.\n");
  return 0;
}
