// Figure 9: the effect of dimension-weighted (DW) utility scores. On the
// Yelp-shaped dataset (4 rating dimensions; Movielens is omitted as it has
// only one), Fully-Automated paths are generated with and without the
// weights of Eq. 1, and the number of displayed rating maps per rating
// dimension is counted. With weights, dimensions balance; without, one or
// two dimensions dominate the display.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "engine/exploration_session.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

std::vector<size_t> CountDimensionMaps(const SubjectiveDatabase& db,
                                       bool use_weights, size_t steps) {
  EngineConfig config = QualityConfig();
  config.use_dimension_weights = use_weights;
  ExplorationSession session(&db, config, ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  session.RunAutomated(steps - 1);
  std::vector<size_t> counts(db.num_dimensions(), 0);
  for (const StepResult& step : session.path()) {
    for (const ScoredRatingMap& m : step.maps) {
      ++counts[m.map.key().dimension];
    }
  }
  return counts;
}

double Spread(const std::vector<size_t>& counts) {
  size_t lo = counts[0], hi = counts[0];
  for (size_t c : counts) {
    lo = std::min(lo, c);
    hi = std::max(hi, c);
  }
  return static_cast<double>(hi) - static_cast<double>(lo);
}

}  // namespace

int main() {
  PrintBanner("Rating maps per dimension, with vs. without DW weights",
              "Figure 9");
  size_t steps = static_cast<size_t>(EnvInt("SUBDEX_STEPS", 10));
  BenchDataset yelp = MakeYelp(EnvDouble("SUBDEX_SCALE", 0.05), 61);
  std::printf("%s, %zu-step Fully-Automated path, k=3 maps per step\n\n",
              yelp.name.c_str(), steps);

  std::printf("%-16s", "dimension");
  for (size_t d = 0; d < yelp.db->num_dimensions(); ++d) {
    std::printf(" %-10s", yelp.db->dimension_name(d).c_str());
  }
  std::printf(" max-min\n");

  std::vector<size_t> with = CountDimensionMaps(*yelp.db, true, steps);
  std::printf("%-16s", "with DW");
  for (size_t c : with) std::printf(" %-10zu", c);
  std::printf(" %.0f\n", Spread(with));

  std::vector<size_t> without = CountDimensionMaps(*yelp.db, false, steps);
  std::printf("%-16s", "without DW");
  for (size_t c : without) std::printf(" %-10zu", c);
  std::printf(" %.0f\n", Spread(without));

  std::printf(
      "\nexpected shape (paper Fig. 9): with DW weights the per-dimension "
      "counts are balanced; without them a single dimension dominates at "
      "the cost of the others (larger max-min spread).\n");
  return 0;
}
