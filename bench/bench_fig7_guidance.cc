// Figure 7: exploration-guidance user study. For each dataset and scenario,
// simulated subjects grouped by CS expertise and domain knowledge perform
// the task in two exploration modes (high-CS subjects: User-Driven and
// Recommendation-Powered; low-CS subjects: Recommendation-Powered and
// Fully-Automated, matching the paper's assignment). Reports the average
// number of identified irregular groups (Scenario I) / insights
// (Scenario II) per treatment cell.
//
// Paper scale: 120 MTurk subjects per dataset/scenario, 30 per cell.
// Default here: SUBDEX_SUBJECTS=4 simulated subjects per (cell, mode) on
// scaled datasets; raise via environment for higher fidelity.

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/insights.h"
#include "datagen/irregular.h"
#include "study/experiment.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

ScenarioTask MakeTask(SubjectiveDatabase* db, ScenarioKind kind,
                      bool yelp_shaped, uint64_t seed) {
  ScenarioTask task;
  task.kind = kind;
  if (kind == ScenarioKind::kIrregularGroups) {
    // 2 groups: one reviewer-side, one item-side.
    IrregularPlantingOptions plant = BenchIrregularOptions(yelp_shaped);
    task.irregulars = PlantIrregularGroups(db, plant, seed);
  } else {
    InsightPlantingOptions plant;
    plant.count = 5;
    plant.min_records = std::max<size_t>(20, db->num_records() / 50);
    task.insights = PlantInsights(db, plant, seed);
  }
  return task;
}

void RunCell(const SubjectiveDatabase& db, const ScenarioTask& task,
             bool high_cs, bool high_domain, size_t subjects,
             size_t num_steps, uint64_t seed) {
  EngineConfig config = QualityConfig();
  const char* cell = high_cs ? "High CS" : "Low CS ";
  const char* domain = high_domain ? "High Domain" : "Low Domain ";
  ExplorationMode modes[2];
  const char* labels[2];
  if (high_cs) {
    modes[0] = ExplorationMode::kUserDriven;
    labels[0] = "UD";
    modes[1] = ExplorationMode::kRecommendationPowered;
    labels[1] = "RP";
  } else {
    modes[0] = ExplorationMode::kRecommendationPowered;
    labels[0] = "RP";
    modes[1] = ExplorationMode::kFullyAutomated;
    labels[1] = "FA";
  }
  std::printf("  %s / %s : ", cell, domain);
  for (int m = 0; m < 2; ++m) {
    TreatmentOutcome outcome =
        RunTreatmentGroup(db, task, modes[m], high_cs, high_domain, subjects,
                          num_steps, config, seed + m);
    std::printf("%s: %.2f (sd %.2f)   ", labels[m], outcome.mean_found,
                outcome.stddev_found);
  }
  std::printf("\n");
}

void RunScenarioBlock(SubjectiveDatabase* db, const char* dataset,
                      ScenarioKind kind, bool yelp_shaped, size_t subjects,
                      uint64_t seed) {
  bool irregular = kind == ScenarioKind::kIrregularGroups;
  size_t num_steps = irregular ? 7 : 10;  // Table 3 path lengths
  ScenarioTask task = MakeTask(db, kind, yelp_shaped, seed);
  std::printf("\nScenario %s on %s: %zu planted, %zu-step paths\n",
              irregular ? "I (irregular groups)" : "II (insights)", dataset,
              task.total(), num_steps);
  for (bool high_cs : {true, false}) {
    for (bool high_domain : {true, false}) {
      RunCell(*db, task, high_cs, high_domain, subjects, num_steps,
              seed * 31 + (high_cs ? 7 : 0) + (high_domain ? 3 : 0));
    }
  }
}

}  // namespace

int main() {
  PrintBanner("Exploration guidance study", "Figure 7");
  size_t subjects = static_cast<size_t>(EnvInt("SUBDEX_SUBJECTS", 4));
  double ml_scale = EnvDouble("SUBDEX_SCALE", 0.15);
  std::printf("subjects per (cell, mode): %zu  (paper: 30)\n", subjects);

  BenchDataset movielens = MakeMovielens(ml_scale, 11);
  std::printf("\n=== %s (%zu records) ===\n", movielens.name.c_str(),
              movielens.db->num_records());
  RunScenarioBlock(movielens.db.get(), "Movielens",
                   ScenarioKind::kIrregularGroups, /*yelp_shaped=*/false,
                   subjects, 101);
  // Re-generate for Scenario II so Scenario I's floored scores don't leak.
  movielens = MakeMovielens(ml_scale, 11);
  RunScenarioBlock(movielens.db.get(), "Movielens",
                   ScenarioKind::kInsightExtraction, /*yelp_shaped=*/false,
                   subjects, 103);

  double yelp_scale = EnvDouble("SUBDEX_SCALE", 0.05);
  BenchDataset yelp = MakeYelp(yelp_scale, 13);
  std::printf("\n=== %s (%zu records) ===\n", yelp.name.c_str(),
              yelp.db->num_records());
  RunScenarioBlock(yelp.db.get(), "Yelp", ScenarioKind::kIrregularGroups,
                   /*yelp_shaped=*/true, subjects, 107);
  yelp = MakeYelp(yelp_scale, 13);
  RunScenarioBlock(yelp.db.get(), "Yelp", ScenarioKind::kInsightExtraction,
                   /*yelp_shaped=*/true, subjects, 109);

  std::printf(
      "\npaper (Fig. 7) reference ranges: Scenario I UD 0.6-0.8, RP 1.2-1.5, "
      "FA 0.7-0.9; Scenario II UD 2.2-2.4, RP 4.0-4.4, FA 3.1-3.4.\n"
      "expected shape: RP > UD and RP > FA in every cell; domain knowledge "
      "has no significant effect.\n");
  return 0;
}
