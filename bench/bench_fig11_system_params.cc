// Figure 11: running times as a function of system parameters on the
// Yelp-shaped dataset: (a) the number of displayed rating maps k, (b) the
// number of next-step recommendations o, and (c) the pruning-diversity
// factor l, for SubDEx and the five restricted variants. As in Figure 10,
// the average per-step latency of a Fully-Automated path is reported,
// along with per-step histogram-update work. Note: the flat-in-o behavior
// of the parallel variants requires >= o physical cores; on fewer cores
// the work column still shows the variant separation.

#include <cstdio>

#include "bench/bench_common.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

EngineConfig ScalabilityConfig(const AlgorithmVariant& variant) {
  EngineConfig config = QualityConfig();
  config.pruning = variant.pruning;
  config.parallel_recommendations = variant.parallel;
  config.operations.max_candidates = 80;
  return config;
}

void Sweep(const SubjectiveDatabase& db, const char* param, size_t steps,
           size_t repeats, const std::vector<size_t>& values,
           void (*apply)(EngineConfig*, size_t)) {
  std::printf("\n--- running time vs. %s ---\n", param);
  for (size_t value : values) {
    std::printf("\n%s = %zu:\n", param, value);
    std::printf("%-16s %14s %18s\n", "variant", "avg step ms",
                "avg updates/step");
    for (const AlgorithmVariant& v : ScalabilityVariants()) {
      EngineConfig config = ScalabilityConfig(v);
      apply(&config, value);
      StepCost cost = MeasureSteps(db, config, steps, repeats);
      std::printf("%-16s %14.1f %18.0f\n", v.name, cost.avg_ms,
                  cost.avg_record_updates);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  PrintBanner("Running times vs. system parameters", "Figure 11 (a, b, c)");
  double scale = EnvDouble("SUBDEX_SCALE", 0.2);
  size_t steps = static_cast<size_t>(EnvInt("SUBDEX_STEPS", 3));
  size_t repeats = RepeatCount(argc, argv);
  BenchDataset yelp = MakeYelp(scale, 91);
  std::printf("%s: %zu records; %zu-step FA paths; defaults k=3 o=3 l=3; "
              "median of %zu run(s)\n",
              yelp.name.c_str(), yelp.db->num_records(), steps, repeats);

  Sweep(*yelp.db, "k (# rating maps)", steps, repeats, {1, 2, 3, 4, 5},
        [](EngineConfig* c, size_t v) { c->k = v; });
  // For the o sweep the builder gets the paper's o-proportional evaluation
  // budget (top-o operations per displayed map => ~k*o evaluations).
  Sweep(*yelp.db, "o (# recommendations)", steps, repeats, {1, 2, 3, 4, 5},
        [](EngineConfig* c, size_t v) {
          c->o = v;
          c->max_operation_evaluations = c->k * v * 4;
        });
  Sweep(*yelp.db, "l (pruning-diversity factor)", steps, repeats,
        {1, 2, 3, 4, 5},
        [](EngineConfig* c, size_t v) { c->l = v; });

  std::printf(
      "\nexpected shape (paper Fig. 11): (a) nearly flat in k — the same "
      "k*l candidate budget is examined; (b) flat in o for parallel "
      "variants, linear for No-Parallelism/Naive (requires multiple "
      "physical cores to show in wall time); (c) time grows with l for "
      "pruned variants (fewer maps discarded), flat for unpruned ones.\n");
  return 0;
}
