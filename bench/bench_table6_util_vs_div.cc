// Table 6: average number of identified irregular groups when subjects
// examine utility-only vs. diversity-only exploration paths (Scenario I,
// Fully-Automated). The paper finds utility-only superior here — irregular
// patterns are exactly what high-utility maps surface — while Section 5.2.3
// notes diversity-only wins for insight extraction; we report both
// scenarios to show the task dependence.

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/insights.h"
#include "datagen/irregular.h"
#include "study/experiment.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

double RunConfigured(SubjectiveDatabase* db, bool yelp_shaped,
                     ScenarioKind kind, SelectionMode selection,
                     size_t subjects, uint64_t seed) {
  ScenarioTask task;
  task.kind = kind;
  if (kind == ScenarioKind::kIrregularGroups) {
    IrregularPlantingOptions plant = BenchIrregularOptions(yelp_shaped);
    task.irregulars = PlantIrregularGroups(db, plant, seed);
  } else {
    InsightPlantingOptions plant;
    plant.count = 5;
    plant.min_records = std::max<size_t>(20, db->num_records() / 50);
    task.insights = PlantInsights(db, plant, seed);
  }
  EngineConfig config = QualityConfig();
  config.selection = selection;
  size_t steps = kind == ScenarioKind::kIrregularGroups ? 7 : 10;
  TreatmentOutcome outcome = RunTreatmentGroup(
      *db, task, ExplorationMode::kFullyAutomated, /*high_cs=*/true,
      /*high_domain=*/false, subjects, steps, config, seed + 11);
  return outcome.mean_found;
}

}  // namespace

int main() {
  PrintBanner("Utility-only vs. diversity-only exploration paths",
              "Table 6 (+ the Scenario II observation of Section 5.2.3)");
  size_t subjects = static_cast<size_t>(EnvInt("SUBDEX_SUBJECTS", 8));
  std::printf("subjects per cell: %zu (paper: 15)\n\n", subjects);

  std::printf("%-12s %-12s %-14s %s\n", "Dataset", "Scenario",
              "Utility-only", "Diversity-only");
  for (int ds = 0; ds < 2; ++ds) {
    for (ScenarioKind kind : {ScenarioKind::kIrregularGroups,
                              ScenarioKind::kInsightExtraction}) {
      // Average over several planted ground truths; both selection modes
      // see identical plantings.
      const int plantings = EnvInt("SUBDEX_PLANTINGS", 3);
      double util_mean = 0.0, div_mean = 0.0;
      for (int p = 0; p < plantings; ++p) {
        uint64_t plant_seed = 501 + static_cast<uint64_t>(p);
        {
          BenchDataset fresh =
              ds == 0 ? MakeMovielens(EnvDouble("SUBDEX_SCALE", 0.15), 51)
                      : MakeYelp(EnvDouble("SUBDEX_SCALE", 0.05), 53);
          util_mean += RunConfigured(fresh.db.get(), ds == 1, kind,
                                     SelectionMode::kUtilityOnly, subjects,
                                     plant_seed);
        }
        {
          BenchDataset fresh =
              ds == 0 ? MakeMovielens(EnvDouble("SUBDEX_SCALE", 0.15), 51)
                      : MakeYelp(EnvDouble("SUBDEX_SCALE", 0.05), 53);
          div_mean += RunConfigured(fresh.db.get(), ds == 1, kind,
                                    SelectionMode::kDiversityOnly, subjects,
                                    plant_seed);
        }
      }
      util_mean /= plantings;
      div_mean /= plantings;
      std::printf("%-12s %-12s %-14.2f %.2f\n", ds == 0 ? "Movielens" : "Yelp",
                  kind == ScenarioKind::kIrregularGroups ? "I" : "II",
                  util_mean, div_mean);
    }
  }
  std::printf(
      "\npaper (Table 6, Scenario I): utility-only 1.4/1.3 vs. "
      "diversity-only 0.6/0.6.\n"
      "expected shape: utility-only wins Scenario I; diversity-only is "
      "preferable for Scenario II (more data facets shown).\n");
  return 0;
}
