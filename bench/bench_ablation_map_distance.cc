// Ablation of the rating-map distance driving GMM diversification
// (DESIGN.md, Section 3): the paper uses EMD between rating distributions
// and observes that this "increases the probability of choosing rating
// maps aggregated by different attributes". Our default subgroup-signature
// EMD distinguishes groupings of the same record set, which the plain
// overall-distribution EMD cannot (maps of the same group and dimension
// always compare as identical under it). This bench measures the
// consequence: the attribute and dimension variety of Fully-Automated
// exploration paths under each distance.

#include <cstdio>
#include <set>

#include "bench/bench_common.h"
#include "engine/exploration_session.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

struct Variety {
  size_t attributes = 0;
  size_t dimensions = 0;
};

Variety RunPath(const SubjectiveDatabase& db, MapDistanceKind kind,
                size_t steps) {
  EngineConfig config = QualityConfig();
  config.map_distance = kind;
  ExplorationSession session(&db, config, ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  session.RunAutomated(steps - 1);
  std::set<std::pair<int, size_t>> attrs;
  std::set<size_t> dims;
  for (const StepResult& step : session.path()) {
    for (const ScoredRatingMap& m : step.maps) {
      attrs.insert({m.map.key().side == Side::kReviewer ? 0 : 1,
                    m.map.key().attribute});
      dims.insert(m.map.key().dimension);
    }
  }
  return {attrs.size(), dims.size()};
}

}  // namespace

int main() {
  PrintBanner("Map-distance ablation: overall vs. subgroup-signature EMD",
              "Section 3.2.4 (diversity of rating maps)");
  size_t steps = static_cast<size_t>(EnvInt("SUBDEX_STEPS", 8));
  std::printf("%zu-step Fully-Automated paths, k=3 maps per step\n\n", steps);
  std::printf("%-12s %-18s %-18s %s\n", "dataset", "distance",
              "#attributes shown", "#dimensions shown");
  for (int ds = 0; ds < 2; ++ds) {
    BenchDataset data = ds == 0
                            ? MakeMovielens(EnvDouble("SUBDEX_SCALE", 0.15), 141)
                            : MakeYelp(EnvDouble("SUBDEX_SCALE", 0.05), 143);
    for (MapDistanceKind kind :
         {MapDistanceKind::kOverallEmd, MapDistanceKind::kSignatureEmd}) {
      Variety v = RunPath(*data.db, kind, steps);
      std::printf("%-12s %-18s %-18zu %zu\n", ds == 0 ? "Movielens" : "Yelp",
                  kind == MapDistanceKind::kOverallEmd ? "overall-EMD"
                                                       : "signature-EMD",
                  v.attributes, v.dimensions);
    }
  }
  std::printf(
      "\nexpected shape: signature-EMD shows at least as many distinct "
      "aggregation attributes — overall-EMD cannot tell apart maps of the "
      "same group and dimension, so GMM's picks collapse onto fewer "
      "attributes.\n");
  return 0;
}
