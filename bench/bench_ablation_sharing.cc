// Ablation of the "Combining Multiple Aggregates" sharing optimization
// (Section 4.2.1): with sharing, every candidate rating map that groups by
// the same attribute is fed from one scan per phase (the grouping code is
// resolved once per record and all rating dimensions' histograms update);
// without it, each candidate re-reads the records itself. The paper adopts
// the optimization from SeeDB without ablating it; this bench quantifies
// its contribution on the Yelp-shaped dataset (4 rating dimensions, so the
// ideal sharing factor on scan overhead is ~4x).

#include <cstdio>

#include "bench/bench_common.h"

using namespace subdex;
using namespace subdex::bench;

int main() {
  PrintBanner("Sharing ablation: combined multi-aggregate scans",
              "Section 4.2.1 (sharing-based optimizations)");
  double scale = EnvDouble("SUBDEX_SCALE", 0.2);
  size_t steps = static_cast<size_t>(EnvInt("SUBDEX_STEPS", 3));
  BenchDataset yelp = MakeYelp(scale, 131);
  std::printf("%s: %zu records, %zu rating dimensions; %zu-step FA paths\n\n",
              yelp.name.c_str(), yelp.db->num_records(),
              yelp.db->num_dimensions(), steps);

  std::printf("%-24s %14s %18s\n", "configuration", "avg step ms",
              "avg updates/step");
  for (PruningScheme pruning :
       {PruningScheme::kNone, PruningScheme::kHybrid}) {
    for (bool share : {true, false}) {
      EngineConfig config = QualityConfig();
      config.pruning = pruning;
      config.share_scans = share;
      config.operations.max_candidates = 80;
      StepCost cost = MeasureSteps(*yelp.db, config, steps);
      std::printf("%-10s %-13s %14.1f %18.0f\n", PruningSchemeName(pruning),
                  share ? "shared" : "per-candidate", cost.avg_ms,
                  cost.avg_record_updates);
    }
  }
  std::printf(
      "\nexpected shape: identical results (unit-tested) with lower wall "
      "time for shared scans; the gap narrows under pruning, which removes "
      "most scan work either way.\n");
  return 0;
}
