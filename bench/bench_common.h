#ifndef SUBDEX_BENCH_BENCH_COMMON_H_
#define SUBDEX_BENCH_BENCH_COMMON_H_

// Shared setup for the experiment harness. Every binary under bench/
// regenerates one table or figure of the paper's evaluation (Section 5).
// Quality experiments run on proportionally scaled synthetic datasets and
// with fewer simulated subjects than the paper's 30-per-cell Mechanical
// Turk sample; each binary prints its actual scale so runs are
// self-describing, and the environment variables SUBDEX_SUBJECTS /
// SUBDEX_SCALE raise the fidelity when more time is available.

#include <memory>
#include <string>
#include <vector>

#include "datagen/irregular.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "engine/config.h"
#include "subjective/subjective_db.h"

namespace subdex::bench {

struct BenchDataset {
  std::string name;
  std::unique_ptr<SubjectiveDatabase> db;
};

/// MovieLens-shaped dataset at `scale` of the published size.
BenchDataset MakeMovielens(double scale, uint64_t seed);

/// Yelp-shaped dataset at `scale` of the published size; the 93-item table
/// is kept at full size (proportional scaling would destroy it).
BenchDataset MakeYelp(double scale, uint64_t seed);

/// Hotel-shaped dataset at `scale` of the published size.
BenchDataset MakeHotel(double scale, uint64_t seed);

/// Engine configuration for the quality experiments: paper defaults
/// (Table 3) with a bounded candidate-operation budget so sessions finish
/// in benchmark time.
EngineConfig QualityConfig();

/// Scenario-I planting options preserving the paper's signal-to-noise on
/// scaled-down data: the member floor is a fraction of the table (a
/// fixed-count group's signal dilutes as the dataset shrinks), and
/// Yelp-shaped data — where every attribute has only 2-13 values — uses
/// two-attribute descriptions so a group of restaurants out of 93 remains
/// discoverable within a 7-step budget.
IrregularPlantingOptions BenchIrregularOptions(bool yelp_shaped);

/// Integer environment override with default.
int EnvInt(const char* name, int fallback);

/// Double environment override with default.
double EnvDouble(const char* name, double fallback);

/// Prints a banner for one experiment binary.
void PrintBanner(const std::string& title, const std::string& paper_ref);

/// One algorithm configuration of the scalability study (Section 5.1):
/// SubDEx plus the five restricted variants.
struct AlgorithmVariant {
  const char* name;
  PruningScheme pruning;
  bool parallel;
};

/// SubDEx, No-Pruning, CI-Pruning, MAB-Pruning, No-Parallelism, Naive.
const std::vector<AlgorithmVariant>& ScalabilityVariants();

/// Measured cost of a short Fully-Automated path: per-step wall time (the
/// paper's measure — operation picked to maps + recommendations displayed)
/// and per-step histogram-update work (hardware-independent; exposes the
/// pruning effect even on machines where wall time is noisy).
struct StepCost {
  double avg_ms = 0.0;
  double avg_record_updates = 0.0;
};

StepCost MeasureSteps(const SubjectiveDatabase& db, EngineConfig config,
                      size_t steps);

/// Median-of-`repeats` MeasureSteps: every run uses a fresh session, each
/// StepCost field is the median across runs (util MedianOfRuns), so one
/// noisy run — page faults, frequency scaling — cannot become the
/// reported number. repeats < 1 is treated as 1.
StepCost MeasureSteps(const SubjectiveDatabase& db, EngineConfig config,
                      size_t steps, size_t repeats);

/// Benchmark repeat count: `--repeat=N` on the command line wins, then the
/// SUBDEX_REPEAT environment variable, default 1. Invalid or non-positive
/// values fall back to 1 (a benchmark should run, not argue).
size_t RepeatCount(int argc, char** argv);

}  // namespace subdex::bench

#endif  // SUBDEX_BENCH_BENCH_COMMON_H_
