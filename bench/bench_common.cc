#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "engine/exploration_session.h"
#include "util/stats.h"
#include "util/string_util.h"

namespace subdex::bench {

BenchDataset MakeMovielens(double scale, uint64_t seed) {
  DatasetSpec spec = MovielensSpec().Scaled(scale);
  BenchDataset out;
  out.name = "Movielens(x" + FormatDouble(scale, 2) + ")";
  out.db = GenerateDataset(spec, seed);
  return out;
}

BenchDataset MakeYelp(double scale, uint64_t seed) {
  DatasetSpec spec = YelpSpec().Scaled(scale);
  spec.num_items = YelpSpec().num_items;  // keep the 93-restaurant table
  BenchDataset out;
  out.name = "Yelp(x" + FormatDouble(scale, 2) + ")";
  out.db = GenerateDataset(spec, seed);
  return out;
}

BenchDataset MakeHotel(double scale, uint64_t seed) {
  DatasetSpec spec = HotelSpec().Scaled(scale);
  BenchDataset out;
  out.name = "Hotel(x" + FormatDouble(scale, 2) + ")";
  out.db = GenerateDataset(spec, seed);
  return out;
}

EngineConfig QualityConfig() {
  EngineConfig config;  // k=3, o=3, l=3, n=10 (Table 3)
  config.operations.max_candidates = 100;
  config.num_threads = 4;
  return config;
}

IrregularPlantingOptions BenchIrregularOptions(bool yelp_shaped) {
  IrregularPlantingOptions options;
  if (yelp_shaped) {
    options.min_member_fraction = 0.02;
    options.max_description = 2;
  } else {
    options.min_member_fraction = 0.01;
  }
  return options;
}

int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  int out = fallback;
  if (!ParseInt(value, &out)) return fallback;
  return out;
}

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  double out = fallback;
  if (!ParseDouble(value, &out)) return fallback;
  return out;
}

const std::vector<AlgorithmVariant>& ScalabilityVariants() {
  static const std::vector<AlgorithmVariant> kVariants = {
      {"SubDEx", PruningScheme::kHybrid, true},
      {"No-Pruning", PruningScheme::kNone, true},
      {"CI-Pruning", PruningScheme::kConfidenceInterval, true},
      {"MAB-Pruning", PruningScheme::kMab, true},
      {"No-Parallelism", PruningScheme::kHybrid, false},
      {"Naive", PruningScheme::kNone, false},
  };
  return kVariants;
}

StepCost MeasureSteps(const SubjectiveDatabase& db, EngineConfig config,
                      size_t steps) {
  ExplorationSession session(&db, config, ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  session.RunAutomated(steps - 1);
  StepCost cost;
  for (const StepResult& step : session.path()) {
    cost.avg_ms += step.elapsed_ms;
    cost.avg_record_updates += static_cast<double>(step.stats.record_updates);
  }
  size_t n = session.path().size();
  cost.avg_ms /= static_cast<double>(n);
  cost.avg_record_updates /= static_cast<double>(n);
  return cost;
}

StepCost MeasureSteps(const SubjectiveDatabase& db, EngineConfig config,
                      size_t steps, size_t repeats) {
  if (repeats < 1) repeats = 1;
  // One pass collects both fields, so the medians come from the same runs
  // (MedianOfRuns would re-run the workload once per field).
  std::vector<double> ms, updates;
  ms.reserve(repeats);
  updates.reserve(repeats);
  for (size_t i = 0; i < repeats; ++i) {
    StepCost one = MeasureSteps(db, config, steps);
    ms.push_back(one.avg_ms);
    updates.push_back(one.avg_record_updates);
  }
  StepCost cost;
  cost.avg_ms = Median(std::move(ms));
  cost.avg_record_updates = Median(std::move(updates));
  return cost;
}

size_t RepeatCount(int argc, char** argv) {
  const char* spec = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) spec = argv[i] + 9;
  }
  if (spec == nullptr) spec = std::getenv("SUBDEX_REPEAT");
  if (spec == nullptr) return 1;
  int out = 1;
  if (!ParseInt(spec, &out) || out < 1) return 1;
  return static_cast<size_t>(out);
}

void PrintBanner(const std::string& title, const std::string& paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

}  // namespace subdex::bench
