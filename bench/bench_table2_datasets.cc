// Table 2: the examined datasets. Generates all three synthetic datasets at
// their published sizes and prints the statistics the paper tabulates
// (#attributes, max #values per attribute, #rating dimensions, |R|, |U|,
// |I|), verifying the generators reproduce the published shape.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

void PrintRow(const char* name, const SubjectiveDatabase& db) {
  size_t num_attrs =
      db.reviewers().num_attributes() + db.items().num_attributes();
  size_t max_values = 0;
  for (Side side : {Side::kReviewer, Side::kItem}) {
    const Table& t = db.table(side);
    for (size_t a = 0; a < t.num_attributes(); ++a) {
      if (t.schema().attribute(a).type == AttributeType::kNumeric) continue;
      max_values = std::max(max_values, t.DistinctValueCount(a));
    }
  }
  std::printf("%-12s %-10zu %-15zu %-14zu %-9zu %-9zu %zu\n", name, num_attrs,
              max_values, db.num_dimensions(), db.num_records(),
              db.num_reviewers(), db.num_items());
}

}  // namespace

int main() {
  PrintBanner("Dataset statistics", "Table 2");
  double scale = EnvDouble("SUBDEX_SCALE", 1.0);
  std::printf("generation scale: %.2f (1.0 = published sizes)\n\n", scale);

  std::printf("%-12s %-10s %-15s %-14s %-9s %-9s %s\n", "Dataset", "#Atts",
              "Max #vals", "#RatingDims", "|R|", "|U|", "|I|");
  {
    BenchDataset d = MakeMovielens(scale, 1);
    PrintRow("Movielens", *d.db);
  }
  {
    BenchDataset d = MakeYelp(scale, 2);
    PrintRow("Yelp", *d.db);
  }
  {
    BenchDataset d = MakeHotel(scale, 3);
    PrintRow("Hotel", *d.db);
  }
  std::printf(
      "\npaper (Table 2):\n"
      "Movielens    12         29              1              100000    943       1682\n"
      "Yelp         24         13              4              200500    150318    93\n"
      "Hotel        8          62              4              35912     15493     879\n");
  return 0;
}
