// Figure 8: recall as a function of exploration steps. Subjects use SubDEx
// for both scenarios without a step limit cap (we sweep to 12 steps);
// reported is the average fraction of planted findings identified after
// each step, per exploration mode, on the Movielens-shaped dataset (the
// paper omits Yelp as similar).

#include <cstdio>

#include "bench/bench_common.h"
#include "datagen/insights.h"
#include "datagen/irregular.h"
#include "study/experiment.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

void PrintCurve(const char* label, const std::vector<double>& curve) {
  std::printf("  %-24s", label);
  for (double v : curve) std::printf(" %.2f", v);
  std::printf("\n");
}

void RunScenario(SubjectiveDatabase* db, ScenarioKind kind, size_t subjects,
                 size_t max_steps, uint64_t seed) {
  ScenarioTask task;
  task.kind = kind;
  if (kind == ScenarioKind::kIrregularGroups) {
    IrregularPlantingOptions plant =
        BenchIrregularOptions(/*yelp_shaped=*/false);
    task.irregulars = PlantIrregularGroups(db, plant, seed);
  } else {
    InsightPlantingOptions plant;
    plant.count = 5;
    plant.min_records = std::max<size_t>(20, db->num_records() / 50);
    task.insights = PlantInsights(db, plant, seed);
  }
  std::printf("\nScenario %s (%zu planted), recall after steps 1..%zu:\n",
              kind == ScenarioKind::kIrregularGroups ? "I" : "II",
              task.total(), max_steps);
  EngineConfig config = QualityConfig();
  PrintCurve("user-driven",
             AverageRecallCurve(*db, task, ExplorationMode::kUserDriven,
                                /*high_cs=*/true, subjects, max_steps, config,
                                seed + 1));
  PrintCurve("recommendation-powered",
             AverageRecallCurve(*db, task,
                                ExplorationMode::kRecommendationPowered,
                                /*high_cs=*/true, subjects, max_steps, config,
                                seed + 2));
  PrintCurve("fully-automated",
             AverageRecallCurve(*db, task, ExplorationMode::kFullyAutomated,
                                /*high_cs=*/true, subjects, max_steps, config,
                                seed + 3));
}

}  // namespace

int main() {
  PrintBanner("Recall vs. number of exploration steps", "Figure 8");
  size_t subjects = static_cast<size_t>(EnvInt("SUBDEX_SUBJECTS", 5));
  size_t max_steps = static_cast<size_t>(EnvInt("SUBDEX_STEPS", 12));
  double scale = EnvDouble("SUBDEX_SCALE", 0.15);
  std::printf("subjects per mode: %zu (paper: 30); dataset Movielens x%.2f\n",
              subjects, scale);

  BenchDataset ml = MakeMovielens(scale, 21);
  RunScenario(ml.db.get(), ScenarioKind::kIrregularGroups, subjects,
              max_steps, 301);
  ml = MakeMovielens(scale, 21);
  RunScenario(ml.db.get(), ScenarioKind::kInsightExtraction, subjects,
              max_steps, 303);

  std::printf(
      "\nexpected shape (paper Fig. 8): recall grows with steps in every "
      "mode and the recommendation-powered curve dominates throughout.\n");
  return 0;
}
