// Table 4: quality of next-action recommendations. Exploration paths are
// generated Fully-Automated; the displayed rating maps are fixed (always
// SubDEx's RM-set pipeline) while the next-action recommender varies:
// SubDEx's Recommendation Builder vs. Smart Drill-Down (SDD) vs. Qagview.
// Reports the average number of correctly identified irregular groups.

#include <cstdio>

#include "baselines/qagview.h"
#include "baselines/smart_drilldown.h"
#include "bench/bench_common.h"
#include "datagen/irregular.h"
#include "study/experiment.h"

using namespace subdex;
using namespace subdex::bench;

namespace {

struct Row {
  const char* name;
  double movielens = 0.0;
  double yelp = 0.0;
};

double RunOne(SubjectiveDatabase* db, bool yelp_shaped,
              const NextActionBaseline* baseline, size_t subjects,
              uint64_t seed) {
  IrregularPlantingOptions plant = BenchIrregularOptions(yelp_shaped);
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db, plant, seed);
  EngineConfig config = QualityConfig();
  const size_t steps = 7;
  TreatmentOutcome outcome;
  if (baseline == nullptr) {
    outcome = RunTreatmentGroup(*db, task, ExplorationMode::kFullyAutomated,
                                /*high_cs=*/true, /*high_domain=*/false,
                                subjects, steps, config, seed + 5);
  } else {
    outcome = RunBaselineTreatment(*db, task, *baseline, subjects, steps,
                                   config, seed + 5);
  }
  return outcome.mean_found;
}

}  // namespace

int main() {
  PrintBanner("Quality of next-action recommendations", "Table 4");
  size_t subjects = static_cast<size_t>(EnvInt("SUBDEX_SUBJECTS", 8));
  std::printf("subjects per recommender: %zu (Fully-Automated paths, "
              "Scenario I, displayed maps fixed to SubDEx's)\n\n",
              subjects);

  SmartDrillDown sdd;
  Qagview qagview;
  Row rows[] = {{"SubDEx"}, {"SDD"}, {"Qagview"}};

  for (int ds = 0; ds < 2; ++ds) {
    BenchDataset data = ds == 0
                            ? MakeMovielens(EnvDouble("SUBDEX_SCALE", 0.15), 31)
                            : MakeYelp(EnvDouble("SUBDEX_SCALE", 0.05), 33);
    std::printf("running %s...\n", data.name.c_str());
    const int plantings = EnvInt("SUBDEX_PLANTINGS", 3);
    for (int r = 0; r < 3; ++r) {
      const NextActionBaseline* baseline =
          r == 0 ? nullptr
                 : (r == 1 ? static_cast<const NextActionBaseline*>(&sdd)
                           : static_cast<const NextActionBaseline*>(&qagview));
      // Average over several independently planted ground truths; every
      // recommender sees the same plantings (fresh dataset per run so the
      // floored scores never leak across runs).
      double mean = 0.0;
      for (int p = 0; p < plantings; ++p) {
        BenchDataset fresh =
            ds == 0 ? MakeMovielens(EnvDouble("SUBDEX_SCALE", 0.15), 31)
                    : MakeYelp(EnvDouble("SUBDEX_SCALE", 0.05), 33);
        mean += RunOne(fresh.db.get(), ds == 1, baseline, subjects,
                       401 + static_cast<uint64_t>(ds) * 10 +
                           static_cast<uint64_t>(p));
      }
      (ds == 0 ? rows[r].movielens : rows[r].yelp) = mean / plantings;
    }
  }

  std::printf("\n%-10s %-12s %s\n", "Baseline", "Movielens", "Yelp");
  for (const Row& row : rows) {
    std::printf("%-10s %-12.2f %.2f\n", row.name, row.movielens, row.yelp);
  }
  std::printf(
      "\npaper (Table 4): SubDEx 0.9/0.8, SDD 0.6/0.4, Qagview 0.7/0.5.\n"
      "expected shape: SubDEx first — finding the second irregular group "
      "requires a roll-up, which the drill-down-only baselines never "
      "recommend.\n");
  return 0;
}
