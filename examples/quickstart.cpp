// Quickstart: the paper's running example (Figures 1-3). Mary, a social
// scientist, explores restaurant ratings in three steps: overall ratings by
// age group, then young reviewers' ratings (food by neighborhood, ambiance
// by gender), then young female reviewers (overall by occupation, service
// by cuisine). At each step SubDEx displays the most useful and diverse
// rating maps with their interestingness scores.

#include <cstdio>

#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "engine/exploration_session.h"
#include "util/string_util.h"

namespace {

using namespace subdex;

void PrintMaps(const SubjectiveDatabase& db, const StepResult& step) {
  std::printf("  rating group: %s  (%zu records)\n",
              step.selection.ToString(db).c_str(), step.group_size);
  for (const ScoredRatingMap& scored : step.maps) {
    std::printf("  -- %s\n", scored.map.key().ToString(db).c_str());
    const Table& table = db.table(scored.map.key().side);
    size_t shown = 0;
    for (const Subgroup& sg : scored.map.subgroups()) {
      if (++shown > 6) {
        std::printf("       ... (%zu more subgroups)\n",
                    scored.map.num_subgroups() - 6);
        break;
      }
      std::string name =
          sg.value == kNullCode
              ? "unspecified"
              : table.dictionary(scored.map.key().attribute).ValueOf(sg.value);
      std::printf("       %-18s n=%-5llu %s avg=%s\n", name.c_str(),
                  static_cast<unsigned long long>(sg.count()),
                  sg.dist.ToString().c_str(),
                  FormatDouble(sg.average(), 2).c_str());
    }
    std::printf(
        "     interestingness: conciseness=%.2f agreement=%.2f "
        "self-peculiarity=%.2f global-peculiarity=%.2f -> utility=%.2f "
        "(DW %.2f)\n",
        scored.scores.conciseness, scored.scores.agreement,
        scored.scores.self_peculiarity, scored.scores.global_peculiarity,
        scored.utility, scored.dw_utility);
  }
}

Predicate Pick(Table* table, const char* attr, const char* value) {
  auto result = Predicate::FromPairs(table, {{attr, value}});
  SUBDEX_CHECK_OK(result);
  return result.value();
}

}  // namespace

int main() {
  using namespace subdex;
  std::printf("SubDEx quickstart: exploring a Yelp-like subjective database\n");
  std::printf("=============================================================\n\n");

  DatasetSpec spec = YelpSpec().Scaled(0.05);
  spec.num_items = 93;
  auto db = GenerateDataset(spec, 2024);
  std::printf("dataset: %zu reviewers, %zu restaurants, %zu rating records, "
              "%zu rating dimensions\n\n",
              db->num_reviewers(), db->num_items(), db->num_records(),
              db->num_dimensions());

  EngineConfig config;  // paper defaults: k=3, o=3, l=3, 10 phases
  ExplorationSession session(db.get(), config,
                             ExplorationMode::kRecommendationPowered);

  // Step I: the entire database.
  std::printf("Step I: all reviewers, all restaurants\n");
  const StepResult& step1 = session.Start(GroupSelection{});
  PrintMaps(*db, step1);

  // Step II: Mary drills into young reviewers.
  std::printf("\nStep II: drill down to young reviewers\n");
  GroupSelection young;
  young.reviewer_pred = Pick(&db->reviewers(), "age_group", "young");
  const StepResult& step2 = session.ApplyOperation(young);
  PrintMaps(*db, step2);

  // Step III: young female reviewers.
  std::printf("\nStep III: drill down to young female reviewers\n");
  GroupSelection young_female = young;
  young_female.reviewer_pred =
      young_female.reviewer_pred.With(
          {static_cast<size_t>(db->reviewers().schema().IndexOf("gender")),
           db->reviewers().LookupValue(
               static_cast<size_t>(db->reviewers().schema().IndexOf("gender")),
               "F")});
  const StepResult& step3 = session.ApplyOperation(young_female);
  PrintMaps(*db, step3);

  std::printf("\nNext-step recommendations after Step III:\n");
  for (const Recommendation& rec : step3.recommendations) {
    std::printf("  [utility %.2f] %s  (%zu records)\n", rec.utility,
                rec.operation.Describe(*db).c_str(), rec.group_size);
  }
  std::printf("\nDone: three steps, %zu rating maps displayed.\n",
              session.engine().seen().total());
  return 0;
}
