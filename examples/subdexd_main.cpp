// subdexd: the SubDEx exploration engine as a long-lived daemon. Serves
// concurrent exploration sessions over HTTP/JSON (see src/server/server.h
// for the routes) against synthetic datasets generated at startup.
//
//   subdexd --port=8787 --dataset=movielens:0.05 --dataset=yelp:0.02
//
// Prints "subdexd listening on http://HOST:PORT" once ready (the smoke
// test scrapes this line) and exits 0 on SIGTERM/SIGINT after a graceful
// stop.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "server/server.h"
#include "util/fault_point.h"

namespace {

using namespace subdex;

// Self-pipe: the signal handler may only call async-signal-safe functions,
// so it writes one byte that the main thread blocks on.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int /*signum*/) {
  const char byte = 1;
  // Discard justified: a failed write (pipe full) still means a byte is
  // already pending, which is all the wakeup needs.
  (void)write(g_signal_pipe[1], &byte, 1);
}

struct DatasetFlag {
  std::string name;
  double scale = 0.05;
};

/// Parses "name" or "name:scale"; returns false on an unknown name or a
/// malformed scale.
bool ParseDatasetFlag(const std::string& value, DatasetFlag* out) {
  std::string name = value;
  size_t colon = value.find(':');
  if (colon != std::string::npos) {
    name = value.substr(0, colon);
    const std::string scale_text = value.substr(colon + 1);
    char* end = nullptr;
    out->scale = std::strtod(scale_text.c_str(), &end);
    if (end == scale_text.c_str() || *end != '\0' || !(out->scale > 0)) {
      return false;
    }
  }
  if (name != "movielens" && name != "yelp" && name != "hotel") return false;
  out->name = name;
  return true;
}

DatasetSpec SpecFor(const DatasetFlag& flag) {
  if (flag.name == "yelp") return YelpSpec().Scaled(flag.scale);
  if (flag.name == "hotel") return HotelSpec().Scaled(flag.scale);
  return MovielensSpec().Scaled(flag.scale);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host=ADDR] [--port=N] [--workers=N] [--queue=N]\n"
      "          [--ttl-ms=N] [--max-sessions=N] [--seed=N]\n"
      "          [--journal-dir=PATH] [--journal-fsync=never|batch|"
      "every_record]\n"
      "          [--journal-segment-bytes=N]\n"
      "          [--dataset=NAME[:SCALE]]...\n"
      "datasets: movielens, yelp, hotel (synthetic; SCALE defaults to "
      "0.05)\n"
      "--journal-dir enables crash-safe sessions: mutations are journaled\n"
      "before they are acked and replayed on the next start\n",
      argv0);
  return 2;
}

#if defined(SUBDEX_FAULT_INJECTION)
/// Arms fault points from SUBDEX_FAULT_SPEC so the crash harness can
/// reach into an injection build without a test driver. Comma-separated:
///   name:delay:MS   delay-only (widens the kill window mid-append)
///   name:fail:N     fail every hit after skipping the first N
/// Only compiled with -DSUBDEX_FAULT_INJECTION=ON; release binaries have
/// neither the hook nor the points.
bool ArmFaultsFromEnv() {
  const char* spec_env = std::getenv("SUBDEX_FAULT_SPEC");
  if (spec_env == nullptr || *spec_env == '\0') return true;
  std::string text = spec_env;
  size_t start = 0;
  while (start <= text.size()) {
    size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string entry = text.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) continue;
    size_t c1 = entry.find(':');
    size_t c2 = c1 == std::string::npos ? std::string::npos
                                        : entry.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) return false;
    const std::string name = entry.substr(0, c1);
    const std::string kind = entry.substr(c1 + 1, c2 - c1 - 1);
    char* end = nullptr;
    const double amount = std::strtod(entry.c_str() + c2 + 1, &end);
    if (end == entry.c_str() + c2 + 1 || *end != '\0' || amount < 0) {
      return false;
    }
    FaultInjector::ArmSpec spec;
    if (kind == "delay") {
      spec.delay_ms = amount;
      spec.fail = false;
    } else if (kind == "fail") {
      spec.after_hits = static_cast<size_t>(amount);
      spec.fail = true;
    } else {
      return false;
    }
    FaultInjector::Instance().Arm(name, spec);
    std::fprintf(stderr, "subdexd: armed fault point %s (%s %.0f)\n",
                 name.c_str(), kind.c_str(), amount);
  }
  return true;
}
#endif  // SUBDEX_FAULT_INJECTION

}  // namespace

int main(int argc, char** argv) {
  SubdexServer::Options options;
  uint64_t seed = 42;
  std::vector<DatasetFlag> datasets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      return Usage(argv[0]);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    char* end = nullptr;
    const long number = std::strtol(value.c_str(), &end, 10);
    const bool is_number = end != value.c_str() && *end == '\0';
    if (key == "--host") {
      options.http.host = value;
    } else if (key == "--port" && is_number && number >= 0 &&
               number <= 65535) {
      options.http.port = static_cast<uint16_t>(number);
    } else if (key == "--workers" && is_number && number > 0) {
      options.http.num_workers = static_cast<size_t>(number);
    } else if (key == "--queue" && is_number && number > 0) {
      options.http.queue_capacity = static_cast<size_t>(number);
    } else if (key == "--ttl-ms" && is_number && number > 0) {
      options.sessions.default_ttl = std::chrono::milliseconds(number);
    } else if (key == "--max-sessions" && is_number && number > 0) {
      options.sessions.max_sessions = static_cast<size_t>(number);
    } else if (key == "--seed" && is_number && number >= 0) {
      seed = static_cast<uint64_t>(number);
    } else if (key == "--journal-dir" && !value.empty()) {
      options.journal.dir = value;
    } else if (key == "--journal-fsync") {
      if (!ParseJournalFsync(value, &options.journal.fsync)) {
        return Usage(argv[0]);
      }
    } else if (key == "--journal-segment-bytes" && is_number && number > 0) {
      options.journal.segment_bytes = static_cast<size_t>(number);
    } else if (key == "--dataset") {
      DatasetFlag flag;
      if (!ParseDatasetFlag(value, &flag)) return Usage(argv[0]);
      datasets.push_back(flag);
    } else {
      return Usage(argv[0]);
    }
  }
  if (datasets.empty()) datasets.push_back({"movielens", 0.05});

#if defined(SUBDEX_FAULT_INJECTION)
  if (!ArmFaultsFromEnv()) {
    std::fprintf(stderr, "subdexd: malformed SUBDEX_FAULT_SPEC\n");
    return 2;
  }
#endif

  SubdexServer server(options);
  for (const DatasetFlag& flag : datasets) {
    std::fprintf(stderr, "subdexd: generating dataset %s (scale %.3f)...\n",
                 flag.name.c_str(), flag.scale);
    std::shared_ptr<const SubjectiveDatabase> db =
        GenerateDataset(SpecFor(flag), seed);
    std::fprintf(stderr, "subdexd: %s ready: %zu records\n",
                 flag.name.c_str(), db->num_records());
    Status status = server.RegisterDataset(flag.name, std::move(db));
    if (!status.ok()) {
      std::fprintf(stderr, "subdexd: %s\n", status.message().c_str());
      return 1;
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("subdexd: pipe");
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = OnSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // Broken client connections surface as send() errors, not a dead process.
  signal(SIGPIPE, SIG_IGN);

  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "subdexd: %s\n", status.message().c_str());
    return 1;
  }
  if (options.journal.enabled()) {
    const SubdexServer::RecoveryReport& report = server.recovery();
    std::fprintf(stderr,
                 "subdexd: journal recovery: %zu recovered, %zu divergent, "
                 "%zu torn tail(s)\n",
                 report.sessions_recovered, report.sessions_divergent,
                 report.torn_tails);
  }
  std::printf("subdexd listening on http://%s:%u\n",
              options.http.host.c_str(), server.port());
  // Discard justified: the readiness line must not sit in a stdio buffer
  // while the smoke test polls the log for it.
  (void)std::fflush(stdout);

  char byte = 0;
  ssize_t n;
  do {
    n = read(g_signal_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  std::fprintf(stderr, "subdexd: shutting down\n");
  server.Stop();
  return 0;
}
