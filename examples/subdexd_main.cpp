// subdexd: the SubDEx exploration engine as a long-lived daemon. Serves
// concurrent exploration sessions over HTTP/JSON (see src/server/server.h
// for the routes) against synthetic datasets generated at startup.
//
//   subdexd --port=8787 --dataset=movielens:0.05 --dataset=yelp:0.02
//
// Prints "subdexd listening on http://HOST:PORT" once ready (the smoke
// test scrapes this line) and exits 0 on SIGTERM/SIGINT after a graceful
// stop.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "server/server.h"

namespace {

using namespace subdex;

// Self-pipe: the signal handler may only call async-signal-safe functions,
// so it writes one byte that the main thread blocks on.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int /*signum*/) {
  const char byte = 1;
  // Discard justified: a failed write (pipe full) still means a byte is
  // already pending, which is all the wakeup needs.
  (void)write(g_signal_pipe[1], &byte, 1);
}

struct DatasetFlag {
  std::string name;
  double scale = 0.05;
};

/// Parses "name" or "name:scale"; returns false on an unknown name or a
/// malformed scale.
bool ParseDatasetFlag(const std::string& value, DatasetFlag* out) {
  std::string name = value;
  size_t colon = value.find(':');
  if (colon != std::string::npos) {
    name = value.substr(0, colon);
    const std::string scale_text = value.substr(colon + 1);
    char* end = nullptr;
    out->scale = std::strtod(scale_text.c_str(), &end);
    if (end == scale_text.c_str() || *end != '\0' || !(out->scale > 0)) {
      return false;
    }
  }
  if (name != "movielens" && name != "yelp" && name != "hotel") return false;
  out->name = name;
  return true;
}

DatasetSpec SpecFor(const DatasetFlag& flag) {
  if (flag.name == "yelp") return YelpSpec().Scaled(flag.scale);
  if (flag.name == "hotel") return HotelSpec().Scaled(flag.scale);
  return MovielensSpec().Scaled(flag.scale);
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host=ADDR] [--port=N] [--workers=N] [--queue=N]\n"
      "          [--ttl-ms=N] [--max-sessions=N] [--seed=N]\n"
      "          [--dataset=NAME[:SCALE]]...\n"
      "datasets: movielens, yelp, hotel (synthetic; SCALE defaults to "
      "0.05)\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  SubdexServer::Options options;
  uint64_t seed = 42;
  std::vector<DatasetFlag> datasets;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      return Usage(argv[0]);
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    char* end = nullptr;
    const long number = std::strtol(value.c_str(), &end, 10);
    const bool is_number = end != value.c_str() && *end == '\0';
    if (key == "--host") {
      options.http.host = value;
    } else if (key == "--port" && is_number && number >= 0 &&
               number <= 65535) {
      options.http.port = static_cast<uint16_t>(number);
    } else if (key == "--workers" && is_number && number > 0) {
      options.http.num_workers = static_cast<size_t>(number);
    } else if (key == "--queue" && is_number && number > 0) {
      options.http.queue_capacity = static_cast<size_t>(number);
    } else if (key == "--ttl-ms" && is_number && number > 0) {
      options.sessions.default_ttl = std::chrono::milliseconds(number);
    } else if (key == "--max-sessions" && is_number && number > 0) {
      options.sessions.max_sessions = static_cast<size_t>(number);
    } else if (key == "--seed" && is_number && number >= 0) {
      seed = static_cast<uint64_t>(number);
    } else if (key == "--dataset") {
      DatasetFlag flag;
      if (!ParseDatasetFlag(value, &flag)) return Usage(argv[0]);
      datasets.push_back(flag);
    } else {
      return Usage(argv[0]);
    }
  }
  if (datasets.empty()) datasets.push_back({"movielens", 0.05});

  SubdexServer server(options);
  for (const DatasetFlag& flag : datasets) {
    std::fprintf(stderr, "subdexd: generating dataset %s (scale %.3f)...\n",
                 flag.name.c_str(), flag.scale);
    std::shared_ptr<const SubjectiveDatabase> db =
        GenerateDataset(SpecFor(flag), seed);
    std::fprintf(stderr, "subdexd: %s ready: %zu records\n",
                 flag.name.c_str(), db->num_records());
    Status status = server.RegisterDataset(flag.name, std::move(db));
    if (!status.ok()) {
      std::fprintf(stderr, "subdexd: %s\n", status.message().c_str());
      return 1;
    }
  }

  if (pipe(g_signal_pipe) != 0) {
    std::perror("subdexd: pipe");
    return 1;
  }
  struct sigaction action = {};
  action.sa_handler = OnSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  // Broken client connections surface as send() errors, not a dead process.
  signal(SIGPIPE, SIG_IGN);

  Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "subdexd: %s\n", status.message().c_str());
    return 1;
  }
  std::printf("subdexd listening on http://%s:%u\n",
              options.http.host.c_str(), server.port());
  // Discard justified: the readiness line must not sit in a stdio buffer
  // while the smoke test polls the log for it.
  (void)std::fflush(stdout);

  char byte = 0;
  ssize_t n;
  do {
    n = read(g_signal_pipe[0], &byte, 1);
  } while (n < 0 && errno == EINTR);

  std::fprintf(stderr, "subdexd: shutting down\n");
  server.Stop();
  return 0;
}
