// The subjective-attribute ingestion path (Section 5.1's Yelp pipeline):
// synthesize review text for known per-dimension opinions, then extract
// the rating dimensions back with the VADER-style phrase-window scorer.
// Shows the sentiment rules (negation, boosters, exclamation) at work.

#include <cstdio>

#include "text/review_extraction.h"
#include "text/review_generator.h"
#include "text/sentiment.h"
#include "util/random.h"

int main() {
  using namespace subdex;
  std::printf("Review-text rating extraction (mini-VADER pipeline)\n");
  std::printf("====================================================\n\n");

  SentimentAnalyzer analyzer;
  const char* phrases[] = {
      "the food was delicious",
      "the food was not delicious",
      "the food was absolutely delicious !",
      "slightly tasty food",
      "utterly horrible service",
      "okay service , nothing more",
  };
  std::printf("compound sentiment scores:\n");
  for (const char* p : phrases) {
    std::printf("  %-42s -> %+0.3f\n", p, analyzer.ScoreText(p));
  }

  std::printf("\nround trip: target scores -> review text -> extracted scores\n");
  ReviewGenerator generator({"food", "service", "ambiance"});
  ReviewExtractor extractor({{"food"}, {"service"}, {"ambiance"}}, 5);
  Rng rng(2021);
  const int cases[][3] = {{5, 3, 1}, {1, 5, 4}, {2, 2, 5}, {4, 1, 3}};
  for (const auto& target : cases) {
    std::string review =
        generator.Generate({target[0], target[1], target[2]}, &rng);
    std::vector<double> extracted = extractor.ExtractScores(review, 3.0);
    std::printf("\n  targets  food=%d service=%d ambiance=%d\n", target[0],
                target[1], target[2]);
    std::printf("  review   \"%s\"\n", review.c_str());
    std::printf("  extract  food=%.0f service=%.0f ambiance=%.0f\n",
                extracted[0], extracted[1], extracted[2]);
  }
  std::printf("\nthe synthetic Yelp/Hotel datasets run every rating record "
              "through this loop.\n");
  return 0;
}
