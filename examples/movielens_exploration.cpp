// Fully-Automated exploration of a MovieLens-100K-shaped database: the
// engine applies the top-1 next-step recommendation at every step,
// producing a fixed-length exploration path without user input
// (Section 3.3's third mode). Prints the path with the operation taken,
// the displayed maps and per-step engine statistics.

#include <cstdio>

#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "engine/exploration_session.h"

int main() {
  using namespace subdex;
  std::printf("Fully-Automated SDE on a MovieLens-shaped database\n");
  std::printf("==================================================\n\n");

  DatasetSpec spec = MovielensSpec().Scaled(0.3);
  auto db = GenerateDataset(spec, 7);
  std::printf("dataset: %zu reviewers, %zu movies, %zu ratings\n\n",
              db->num_reviewers(), db->num_items(), db->num_records());

  EngineConfig config;
  config.operations.max_candidates = 150;
  ExplorationSession session(db.get(), config,
                             ExplorationMode::kFullyAutomated);
  session.Start(GroupSelection{});
  size_t steps = session.RunAutomated(6);
  std::printf("executed %zu automated steps\n\n", steps + 1);

  for (size_t s = 0; s < session.path().size(); ++s) {
    const StepResult& step = session.path()[s];
    std::printf("step %zu  [%6.1f ms, %zu candidate maps, %zu pruned]\n", s,
                step.elapsed_ms, step.stats.num_candidates,
                step.stats.pruned_ci + step.stats.pruned_mab);
    std::printf("  selection: %s  (%zu records)\n",
                step.selection.ToString(*db).c_str(), step.group_size);
    for (const ScoredRatingMap& m : step.maps) {
      std::printf("  map: %-55s utility=%.2f\n",
                  m.map.key().ToString(*db).c_str(), m.utility);
    }
    if (!step.recommendations.empty()) {
      std::printf("  next: %s (utility %.2f)\n",
                  step.recommendations[0].operation.Describe(*db).c_str(),
                  step.recommendations[0].utility);
    }
  }

  // Summarize which operations kinds the automated path used: the ability
  // to roll up / change, not only drill down, is what separates SubDEx
  // from the drill-down baselines (Table 4's analysis).
  size_t filters = 0, generalizes = 0, changes = 0, composites = 0;
  for (size_t s = 1; s < session.path().size(); ++s) {
    const GroupSelection& prev = session.path()[s - 1].selection;
    const GroupSelection& cur = session.path()[s].selection;
    if (cur.size() > prev.size()) {
      (cur.EditDistance(prev) == 1 ? filters : composites) += 1;
    } else if (cur.size() < prev.size()) {
      ++generalizes;
    } else {
      ++changes;
    }
  }
  std::printf(
      "\npath operations: %zu filter (drill-down), %zu generalize (roll-up), "
      "%zu change, %zu composite\n",
      filters, generalizes, changes, composites);
  return 0;
}
