// Scenario I end to end: plant irregular groups (2-3 shared attribute
// values, every score of one dimension forced to 1) into a Hotel-shaped
// database, explore in all three modes, and report which groups each mode's
// displayed maps exposed. Mirrors the guidance experiment of Figure 7.

#include <cstdio>

#include "datagen/irregular.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "study/scenario_runner.h"

int main() {
  using namespace subdex;
  std::printf("Irregular-group hunt on a Hotel-Reviews-shaped database\n");
  std::printf("=======================================================\n\n");

  DatasetSpec spec = HotelSpec().Scaled(0.2);
  auto db = GenerateDataset(spec, 555);
  std::printf("dataset: %zu reviewers, %zu hotels, %zu rating records\n",
              db->num_reviewers(), db->num_items(), db->num_records());

  IrregularPlantingOptions plant;
  plant.count = 2;  // one reviewer group + one item group, as in the study
  ScenarioTask task;
  task.kind = ScenarioKind::kIrregularGroups;
  task.irregulars = PlantIrregularGroups(db.get(), plant, 31337);
  std::printf("planted %zu irregular groups:\n", task.irregulars.size());
  for (const IrregularGroup& g : task.irregulars) {
    std::printf("  * %s\n", g.Describe(*db).c_str());
  }

  EngineConfig config;
  config.operations.max_candidates = 120;

  std::printf("\n%-28s %-10s %s\n", "mode", "found", "per-step cumulative");
  for (ExplorationMode mode :
       {ExplorationMode::kUserDriven, ExplorationMode::kRecommendationPowered,
        ExplorationMode::kFullyAutomated}) {
    UserProfile subject;
    subject.high_cs_expertise = true;
    subject.seed = 77;
    ScenarioRunResult run = RunScenario(*db, task, mode, subject, 7, config);
    std::printf("%-28s %zu/%-8zu ", ExplorationModeName(mode), run.found(),
                task.total());
    for (size_t f : run.cumulative_found) std::printf("%zu ", f);
    std::printf("\n");
  }
  std::printf(
      "\n(the Recommendation-Powered row is the paper's winning "
      "configuration)\n");
  return 0;
}
