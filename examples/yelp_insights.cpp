// Insight extraction (the paper's Scenario II) end to end: plant five
// strong group-level insights into a Yelp-shaped database, then let a
// simulated analyst explore in Recommendation-Powered mode and report
// which insights the displayed rating maps surfaced.

#include <cstdio>

#include "datagen/insights.h"
#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "study/scenario_runner.h"

int main() {
  using namespace subdex;
  std::printf("Insight extraction on a Yelp-shaped database\n");
  std::printf("============================================\n\n");

  DatasetSpec spec = YelpSpec().Scaled(0.05);
  spec.num_items = 93;
  auto db = GenerateDataset(spec, 99);
  std::printf("dataset: %zu reviewers, %zu restaurants, %zu rating records\n",
              db->num_reviewers(), db->num_items(), db->num_records());

  InsightPlantingOptions plant;
  plant.count = 5;
  plant.min_records = db->num_records() / 50;
  ScenarioTask task;
  task.kind = ScenarioKind::kInsightExtraction;
  task.insights = PlantInsights(db.get(), plant, 4242);
  std::printf("planted %zu insights:\n", task.insights.size());
  for (const PlantedInsight& ins : task.insights) {
    std::printf("  * %s\n", ins.Describe(*db).c_str());
  }

  EngineConfig config;
  config.operations.max_candidates = 150;
  UserProfile analyst;
  analyst.high_cs_expertise = true;
  analyst.seed = 11;

  std::printf("\nrunning a 10-step Recommendation-Powered session...\n");
  ScenarioRunResult run =
      RunScenario(*db, task, ExplorationMode::kRecommendationPowered, analyst,
                  10, config);
  std::printf("cumulative insights found per step: ");
  for (size_t found : run.cumulative_found) std::printf("%zu ", found);
  std::printf("\n=> %zu of %zu insights extracted (%.0f ms engine time)\n",
              run.found(), task.total(), run.total_elapsed_ms);

  std::printf("\nfor comparison, a User-Driven (unguided) session:\n");
  ScenarioRunResult unguided = RunScenario(
      *db, task, ExplorationMode::kUserDriven, analyst, 10, config);
  std::printf("=> %zu of %zu insights extracted\n", unguided.found(),
              task.total());
  return 0;
}
