// Interactive SubDEx shell — the programmatic stand-in for the demo paper's
// HTML UI (Figure 5). Explore a synthetic dataset step by step:
//
//   subdex_cli [movielens|yelp|hotel] [scale]
//
// Commands:
//   show                      redisplay the current step's rating maps
//   reviewers <query>|-       set the reviewer selection (SQL-ish: a = b AND ...)
//   items <query>|-           set the item selection
//   go                        apply the selection ("Apply Selection")
//   recs                      show next-step recommendations ("Get Recommendation")
//   apply <i>                 follow recommendation i (1-based)
//   auto <n>                  run n fully-automated steps
//   fallacies                 check the last drill-down for Simpson-style
//                             reversals (drill-down fallacy detection)
//   log                       print the session log
//   save <path>               save the session log to a file
//   help / quit
//
// Reads commands from stdin; with no input (e.g. when run from a script) it
// prints the first step and exits cleanly.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "engine/exploration_session.h"
#include "engine/fallacy.h"
#include "engine/session_log.h"
#include "storage/query_parser.h"
#include "util/string_util.h"

namespace {

using namespace subdex;

// A failed log append means the "log"/"save" commands would silently show
// an incomplete session; tell the user instead of dropping the step.
void LogStep(SessionLog& log, const StepResult& step) {
  Status st = log.Append(step);
  if (!st.ok()) {
    std::printf("warning: step not logged: %s\n", st.ToString().c_str());
  }
}

void PrintStep(const SubjectiveDatabase& db, const StepResult& step) {
  std::printf("\n== rating group: %s  (%zu records, %.0f ms) ==\n",
              step.selection.ToString(db).c_str(), step.group_size,
              step.elapsed_ms);
  for (const ScoredRatingMap& scored : step.maps) {
    std::printf("-- %s   [utility %.2f]\n",
                scored.map.key().ToString(db).c_str(), scored.utility);
    const Table& table = db.table(scored.map.key().side);
    size_t shown = 0;
    for (const Subgroup& sg : scored.map.subgroups()) {
      if (++shown > 5) {
        std::printf("     ...\n");
        break;
      }
      std::string name =
          sg.value == kNullCode
              ? "unspecified"
              : table.dictionary(scored.map.key().attribute).ValueOf(sg.value);
      std::printf("     %-20s n=%-6llu avg=%s %s\n", name.c_str(),
                  static_cast<unsigned long long>(sg.count()),
                  FormatDouble(sg.average(), 2).c_str(),
                  sg.dist.ToString().c_str());
    }
  }
}

void PrintRecommendations(const SubjectiveDatabase& db,
                          const StepResult& step) {
  if (step.recommendations.empty()) {
    std::printf("no recommendations available\n");
    return;
  }
  for (size_t i = 0; i < step.recommendations.size(); ++i) {
    const Recommendation& rec = step.recommendations[i];
    std::printf("[%zu] %-9s %s  (%zu records, utility %.2f)\n", i + 1,
                OperationKindName(rec.operation.kind),
                rec.operation.target.ToString(db).c_str(), rec.group_size,
                rec.utility);
  }
}

void PrintHelp() {
  std::printf(
      "commands: show | reviewers <query>|- | items <query>|- | go | recs |\n"
      "          apply <i> | auto <n> | fallacies | log | save <path> |\n"
      "          help | quit\n"
      "query syntax: attr = value AND attr = 'two words'\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace subdex;
  std::string dataset = argc > 1 ? argv[1] : "yelp";
  double scale = 0.05;
  if (argc > 2 && !ParseDouble(argv[2], &scale)) scale = 0.05;

  DatasetSpec spec;
  if (dataset == "movielens") {
    spec = MovielensSpec().Scaled(scale);
  } else if (dataset == "hotel") {
    spec = HotelSpec().Scaled(scale);
  } else {
    dataset = "yelp";
    spec = YelpSpec().Scaled(scale);
    spec.num_items = YelpSpec().num_items;
  }
  std::printf("generating %s (x%.2f)...\n", dataset.c_str(), scale);
  auto db = GenerateDataset(spec, 20240704);
  std::printf("%zu reviewers, %zu items, %zu rating records, %zu dimensions\n",
              db->num_reviewers(), db->num_items(), db->num_records(),
              db->num_dimensions());

  EngineConfig config;
  config.operations.max_candidates = 150;
  ExplorationSession session(db.get(), config,
                             ExplorationMode::kRecommendationPowered);
  SessionLog log;

  GroupSelection pending;
  const StepResult* current = &session.Start(GroupSelection{});
  LogStep(log, *current);
  PrintStep(*db, *current);
  PrintHelp();

  std::string line;
  while (std::printf("subdex> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string trimmed(Trim(line));
    if (trimmed.empty()) continue;
    std::istringstream in(trimmed);
    std::string command;
    in >> command;
    std::string rest;
    std::getline(in, rest);
    rest = std::string(Trim(rest));

    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      PrintHelp();
    } else if (command == "show") {
      PrintStep(*db, *current);
    } else if (command == "reviewers" || command == "items") {
      bool is_reviewers = command == "reviewers";
      std::string query = rest == "-" ? "" : rest;
      Table* table = is_reviewers ? &db->reviewers() : &db->items();
      Result<Predicate> pred = ParsePredicate(table, query);
      if (!pred.ok()) {
        std::printf("error: %s\n", pred.status().ToString().c_str());
        continue;
      }
      (is_reviewers ? pending.reviewer_pred : pending.item_pred) =
          std::move(pred).value();
      std::printf("pending selection: %s\n", pending.ToString(*db).c_str());
    } else if (command == "go") {
      current = &session.ApplyOperation(pending);
      LogStep(log, *current);
      PrintStep(*db, *current);
    } else if (command == "recs") {
      PrintRecommendations(*db, *current);
    } else if (command == "apply") {
      int index = 0;
      if (!ParseInt(rest, &index) || index < 1 ||
          static_cast<size_t>(index) > current->recommendations.size()) {
        std::printf("usage: apply <1..%zu>\n",
                    current->recommendations.size());
        continue;
      }
      session.ApplyRecommendation(static_cast<size_t>(index - 1));
      current = &session.last();
      pending = current->selection;
      LogStep(log, *current);
      PrintStep(*db, *current);
    } else if (command == "auto") {
      int n = 1;
      if (!rest.empty() && !ParseInt(rest, &n)) n = 1;
      for (int i = 0; i < n; ++i) {
        if (!session.ApplyRecommendation(0)) {
          std::printf("no recommendation to follow\n");
          break;
        }
        current = &session.last();
        pending = current->selection;
        LogStep(log, *current);
        PrintStep(*db, *current);
      }
    } else if (command == "fallacies") {
      const auto& path = session.path();
      if (path.size() < 2) {
        std::printf("need at least two steps to compare\n");
        continue;
      }
      RatingGroup parent = RatingGroup::Materialize(
          *db, path[path.size() - 2].selection);
      RatingGroup child = RatingGroup::Materialize(*db, current->selection);
      auto warnings = DetectDrillDownFallacies(parent, child);
      if (warnings.empty()) {
        std::printf("no drill-down fallacies between the last two steps\n");
      }
      for (const FallacyWarning& w : warnings) {
        std::printf("! %s\n", w.Describe(*db).c_str());
      }
    } else if (command == "log") {
      std::printf("%s", log.Serialize(*db).c_str());
    } else if (command == "save") {
      if (rest.empty()) {
        std::printf("usage: save <path>\n");
        continue;
      }
      Status st = log.SaveToFile(*db, rest);
      std::printf("%s\n", st.ok() ? "saved" : st.ToString().c_str());
    } else {
      std::printf("unknown command '%s' (try 'help')\n", command.c_str());
    }
  }
  std::printf("\nbye — %zu steps explored\n", session.path().size());
  return 0;
}
