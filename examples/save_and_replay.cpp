// Persistence and personalization end to end: generate a dataset, save it
// to disk, reload it, explore, save the session log, and train the
// log-based operation-preference model that re-ranks future
// recommendations (the paper's modular Recommendation Builder extension).

#include <cstdio>
#include <filesystem>

#include "datagen/specs.h"
#include "datagen/synthetic.h"
#include "engine/exploration_session.h"
#include "engine/personalized.h"
#include "engine/session_log.h"
#include "subjective/db_io.h"

int main() {
  using namespace subdex;
  std::printf("Save / reload / replay / personalize\n");
  std::printf("====================================\n\n");

  std::string dir =
      (std::filesystem::temp_directory_path() / "subdex_example_db").string();

  // 1. Generate and persist a dataset.
  DatasetSpec spec = HotelSpec().Scaled(0.1);
  auto original = GenerateDataset(spec, 31415);
  Status st = SaveDatabase(*original, dir);
  SUBDEX_CHECK_OK(st);
  std::printf("saved %zu records to %s\n", original->num_records(),
              dir.c_str());

  // 2. Reload it — the working copy from here on.
  auto loaded = LoadDatabase(dir);
  SUBDEX_CHECK_OK(loaded);
  std::unique_ptr<SubjectiveDatabase> db = std::move(loaded).value();
  std::printf("reloaded: %zu reviewers, %zu items, %zu records\n\n",
              db->num_reviewers(), db->num_items(), db->num_records());

  // 3. Explore and log the session.
  EngineConfig config;
  config.operations.max_candidates = 120;
  ExplorationSession session(db.get(), config,
                             ExplorationMode::kFullyAutomated);
  SessionLog log;
  SUBDEX_CHECK_OK(log.Append(session.Start(GroupSelection{})));
  session.RunAutomated(4);
  for (size_t s = 1; s < session.path().size(); ++s) {
    SUBDEX_CHECK_OK(log.Append(session.path()[s]));
  }
  std::string log_path = dir + "/session.log";
  st = log.SaveToFile(*db, log_path);
  SUBDEX_CHECK_OK(st);
  std::printf("logged a %zu-step session to %s:\n\n%s\n", log.size(),
              log_path.c_str(), log.Serialize(*db).c_str());

  // 4. Train the preference model from the stored log and re-rank the
  //    recommendations of a fresh session.
  auto restored = SessionLog::LoadFromFile(db.get(), log_path);
  SUBDEX_CHECK_OK(restored);
  OperationPreferenceModel model;
  model.ObserveLog(restored.value());
  std::printf("preference model trained on %.0f attribute touches\n",
              model.total_observations());

  ExplorationSession fresh(db.get(), config,
                           ExplorationMode::kRecommendationPowered);
  const StepResult& step = fresh.Start(GroupSelection{});
  std::printf("\nSubDEx ranking:\n");
  for (const Recommendation& rec : step.recommendations) {
    std::printf("  [%.2f] %s\n", rec.utility,
                rec.operation.Describe(*db).c_str());
  }
  std::printf("\npersonalized re-ranking (blend 0.5):\n");
  for (const Recommendation& rec :
       model.Rerank(step.recommendations, step.selection, 0.5)) {
    std::printf("  [affinity %.2f, utility %.2f] %s\n",
                model.Affinity(step.selection, rec.operation.target),
                rec.utility, rec.operation.Describe(*db).c_str());
  }

  std::filesystem::remove_all(dir);
  std::printf("\ndone.\n");
  return 0;
}
